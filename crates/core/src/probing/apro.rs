//! The `APro` adaptive probing algorithm (paper Section 5.3, Figure 11).
//!
//! Both per-step evaluations run on the parallel incremental engine:
//! the policy's `select_db` scores candidates through
//! [`crate::engine::usefulness_all`] (greedy), and the post-probe
//! re-selection's [`best_set`] fans its per-database marginals across
//! cores ([`crate::par`]). `APro` itself stays a straight-line loop —
//! determinism and the paper's control flow are untouched by either
//! optimisation.

use crate::correctness::CorrectnessMetric;
use crate::expected::RdState;
use crate::probing::policy::ProbePolicy;
use crate::selection::best_set;
use serde::{Deserialize, Serialize};

/// `APro` inputs beyond the RD state (paper Figure 11's `q, k, t`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AproConfig {
    /// Number of databases to select.
    pub k: usize,
    /// User-required certainty level `t`: stop as soon as some `DBk`
    /// has `E[Cor(DBk)] ≥ t`.
    pub threshold: f64,
    /// Correctness metric the certainty is measured under.
    pub metric: CorrectnessMetric,
    /// Optional probe budget: stop after this many probes even below
    /// the threshold (`None` = probe until exhaustion if needed).
    pub max_probes: Option<usize>,
}

/// One probe performed during an `APro` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// The probed database.
    pub db: usize,
    /// The actual relevancy learned.
    pub actual: f64,
    /// The best set after this probe.
    pub selected_after: Vec<usize>,
    /// Its expected correctness after this probe.
    pub expected_after: f64,
}

/// The outcome of an `APro` run, including the full per-probe trace
/// (Figure 16's curves read intermediate selections off this trace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AproOutcome {
    /// The returned `DBk`.
    pub selected: Vec<usize>,
    /// Its expected correctness at return time.
    pub expected: f64,
    /// The best set before any probing (the pure RD-based answer).
    pub initial_selected: Vec<usize>,
    /// Its expected correctness.
    pub initial_expected: f64,
    /// Probes in order.
    pub probes: Vec<ProbeRecord>,
    /// True when the threshold was met (false = budget/databases ran out).
    pub satisfied: bool,
}

impl AproOutcome {
    /// Number of probes used.
    pub fn n_probes(&self) -> usize {
        self.probes.len()
    }

    /// The best set and certainty after exactly `p` probes (0 = before
    /// probing). `None` when the run used fewer probes.
    pub fn after_probes(&self, p: usize) -> Option<(&[usize], f64)> {
        if p == 0 {
            Some((&self.initial_selected, self.initial_expected))
        } else {
            self.probes
                .get(p - 1)
                .map(|r| (r.selected_after.as_slice(), r.expected_after))
        }
    }
}

/// One `APro` run, factored into externally driven steps.
///
/// [`apro`] is a straight loop over one session; the batch executor
/// (`crate::batch`) drives many sessions in lock step, collecting each
/// round's probe demands so coincident probes against one database can
/// share a batched search. The factoring changes nothing about any
/// single run: [`Self::next_probe`] performs exactly the loop head's
/// threshold/budget checks and policy selection, [`Self::apply`]
/// exactly the loop body's state update and re-selection, with counter
/// and trace placement unchanged.
pub struct AproSession<'s> {
    state: &'s mut RdState,
    policy: &'s mut dyn ProbePolicy,
    config: AproConfig,
    selected: Vec<usize>,
    expected: f64,
    initial_selected: Vec<usize>,
    initial_expected: f64,
    probes: Vec<ProbeRecord>,
    /// The database handed out by `next_probe` and not yet applied.
    pending: Option<usize>,
    done: bool,
}

impl<'s> AproSession<'s> {
    /// Starts a run: validates the config and evaluates the pure
    /// RD-based answer (paper Figure 11's initialization).
    pub fn begin(
        state: &'s mut RdState,
        policy: &'s mut dyn ProbePolicy,
        config: AproConfig,
    ) -> Self {
        assert!(config.k >= 1 && config.k <= state.len(), "k out of range");
        assert!(
            (0.0..=1.0).contains(&config.threshold),
            "threshold must be a probability"
        );
        mp_obs::counter!("apro.runs").incr();
        let (initial_selected, initial_expected) = best_set(state.rds(), config.k, config.metric);
        Self {
            selected: initial_selected.clone(),
            expected: initial_expected,
            initial_selected,
            initial_expected,
            probes: Vec::new(),
            pending: None,
            done: false,
            state,
            policy,
            config,
        }
    }

    /// Selects the next database to probe, or `None` when the run is
    /// over (threshold met, budget exhausted, or every database
    /// probed). A returned database **must** be [`Self::apply`]'d
    /// before the next call.
    pub fn next_probe(&mut self) -> Option<usize> {
        assert!(
            self.pending.is_none(),
            "apply the previous probe before selecting the next"
        );
        if self.done {
            return None;
        }
        if self.expected >= self.config.threshold {
            self.done = true;
            return None;
        }
        if let Some(max) = self.config.max_probes {
            if self.probes.len() >= max {
                self.done = true;
                return None;
            }
        }
        mp_obs::counter!("apro.iterations").incr();
        let Some(db) = self
            .policy
            .select_db(self.state, self.config.k, self.config.metric)
        else {
            self.done = true; // every database probed
            return None;
        };
        // Waterfall breadcrumb: which database the adaptive loop chose
        // to probe next (a no-op unless a request trace is active).
        mp_obs::trace_annotate("apro.probe_db", u64::try_from(db).unwrap_or(u64::MAX));
        self.pending = Some(db);
        Some(db)
    }

    /// Lands the probe answer for the database `next_probe` selected:
    /// collapses its RD and re-evaluates the best set.
    pub fn apply(&mut self, db: usize, actual: f64) {
        debug_assert_eq!(
            self.pending,
            Some(db),
            "applied probe must match the selected database"
        );
        self.pending = None;
        self.state.probe(db, actual);
        let (sel, exp) = best_set(self.state.rds(), self.config.k, self.config.metric);
        self.selected = sel.clone();
        self.expected = exp;
        self.probes.push(ProbeRecord {
            db,
            actual,
            selected_after: sel,
            expected_after: exp,
        });
    }

    /// Probes landed so far.
    pub fn n_probes(&self) -> usize {
        self.probes.len()
    }

    /// Closes the run and returns its outcome (records the per-query
    /// probe histogram exactly where the loop form did).
    pub fn finish(self) -> AproOutcome {
        let n_probes = u64::try_from(self.probes.len()).unwrap_or(u64::MAX);
        mp_obs::histogram!("apro.probes_per_query", mp_obs::bounds::SMALL).record(n_probes);
        mp_obs::trace_annotate("apro.probes", n_probes);
        AproOutcome {
            satisfied: self.expected >= self.config.threshold,
            selected: self.selected,
            expected: self.expected,
            initial_selected: self.initial_selected,
            initial_expected: self.initial_expected,
            probes: self.probes,
        }
    }
}

/// Runs `APro` (paper Figure 11).
///
/// * `state` — the per-query RD state (derived from estimates + EDs);
///   mutated in place as probes land.
/// * `probe_fn(i)` — performs the live probe of database `i` with the
///   user's query and returns the actual relevancy. `APro` itself never
///   touches databases; this inversion keeps the algorithm pure and
///   testable.
///
/// Termination: the threshold is met, the probe budget is exhausted, or
/// every database has been probed (at which point the certainty is 1 by
/// construction — all RDs are impulses and the best set is exact).
pub fn apro(
    state: &mut RdState,
    config: AproConfig,
    policy: &mut dyn ProbePolicy,
    probe_fn: &mut dyn FnMut(usize) -> f64,
) -> AproOutcome {
    let _span = mp_obs::span!("apro.run");
    let mut session = AproSession::begin(state, policy, config);
    while let Some(db) = session.next_probe() {
        let actual = probe_fn(db);
        session.apply(db, actual);
    }
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probing::greedy::GreedyPolicy;
    use crate::probing::policy::RandomPolicy;
    use mp_stats::Discrete;
    use proptest::prelude::*;

    fn d(pairs: &[(f64, f64)]) -> Discrete {
        Discrete::from_weighted(pairs).unwrap()
    }

    fn paper_state() -> RdState {
        RdState::new(vec![
            d(&[(50.0, 0.4), (100.0, 0.5), (150.0, 0.1)]),
            d(&[(65.0, 0.1), (130.0, 0.9)]),
        ])
    }

    fn cfg(k: usize, t: f64) -> AproConfig {
        AproConfig {
            k,
            threshold: t,
            metric: CorrectnessMetric::Absolute,
            max_probes: None,
        }
    }

    #[test]
    fn below_threshold_answer_returned_without_probing() {
        // Paper Section 3.4: at t = 0.7 the RD-based answer (certainty
        // .85) is returned with zero probes.
        let mut state = paper_state();
        let mut policy = GreedyPolicy;
        let mut probe = |_: usize| -> f64 { panic!("no probe expected") };
        let out = apro(&mut state, cfg(1, 0.7), &mut policy, &mut probe);
        assert!(out.satisfied);
        assert_eq!(out.selected, vec![1]);
        assert!((out.expected - 0.85).abs() < 1e-12);
        assert_eq!(out.n_probes(), 0);
    }

    #[test]
    fn above_threshold_probing_kicks_in() {
        // Paper Section 3.4: at t = 0.9 we must probe. Greedy probes
        // db1 first; suppose the actual relevancy is 50 — then db2 is
        // certain (Figure 5(e)) and APro stops at one probe.
        let mut state = paper_state();
        let mut policy = GreedyPolicy;
        let mut probe = |i: usize| -> f64 {
            assert_eq!(i, 0, "greedy must probe db1 first");
            50.0
        };
        let out = apro(&mut state, cfg(1, 0.9), &mut policy, &mut probe);
        assert!(out.satisfied);
        assert_eq!(out.selected, vec![1]);
        assert_eq!(out.expected, 1.0);
        assert_eq!(out.n_probes(), 1);
        assert_eq!(out.initial_selected, vec![1]);
        assert!((out.initial_expected - 0.85).abs() < 1e-12);
    }

    #[test]
    fn probe_budget_is_respected() {
        let mut state = paper_state();
        let mut policy = GreedyPolicy;
        let mut probe = |_: usize| 100.0;
        let out = apro(
            &mut state,
            AproConfig {
                max_probes: Some(0),
                ..cfg(1, 0.99)
            },
            &mut policy,
            &mut probe,
        );
        assert_eq!(out.n_probes(), 0);
        assert!(!out.satisfied);
    }

    #[test]
    fn exhaustion_reaches_certainty_one() {
        // Threshold 1.0 forces probing everything; afterwards the
        // certainty is exactly 1.
        let mut state = paper_state();
        let mut policy = RandomPolicy::new(7);
        let actuals = [120.0, 65.0];
        let mut probe = |i: usize| actuals[i];
        let out = apro(&mut state, cfg(1, 1.0), &mut policy, &mut probe);
        assert!(out.satisfied);
        assert_eq!(out.expected, 1.0);
        assert_eq!(out.n_probes(), 2);
        assert_eq!(out.selected, vec![0]); // 120 > 65
    }

    #[test]
    fn trace_is_inspectable() {
        let mut state = paper_state();
        let mut policy = GreedyPolicy;
        let mut probe = |_: usize| 50.0;
        let out = apro(&mut state, cfg(1, 1.0), &mut policy, &mut probe);
        let (sel0, exp0) = out.after_probes(0).unwrap();
        assert_eq!(sel0, &[1]);
        assert!((exp0 - 0.85).abs() < 1e-12);
        let (sel1, _) = out.after_probes(1).unwrap();
        assert_eq!(sel1, &[1]);
        assert!(out.after_probes(99).is_none());
    }

    #[test]
    fn no_database_is_probed_twice() {
        let mut state = paper_state();
        let mut policy = RandomPolicy::new(3);
        let mut seen = std::collections::HashSet::new();
        let mut probe = |i: usize| {
            assert!(seen.insert(i), "db {i} probed twice");
            10.0 * i as f64
        };
        let _ = apro(&mut state, cfg(1, 1.0), &mut policy, &mut probe);
    }

    fn arb_state() -> impl Strategy<Value = RdState> {
        proptest::collection::vec(
            proptest::collection::vec((0.0f64..50.0, 0.05f64..1.0), 1..4),
            2..5,
        )
        .prop_map(|dbs| {
            RdState::new(
                dbs.into_iter()
                    .map(|pts| Discrete::from_weighted(&pts).unwrap())
                    .collect(),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn prop_apro_terminates_and_is_sound(
            state in arb_state(),
            t in 0.5f64..1.0,
            seed in 0u64..100
        ) {
            let mut state = state;
            let n = state.len();
            let mut policy = RandomPolicy::new(seed);
            // Deterministic fake actuals.
            let mut probe = |i: usize| (i as f64 * 7.3) % 50.0;
            let out = apro(
                &mut state,
                AproConfig { k: 1, threshold: t, metric: CorrectnessMetric::Absolute, max_probes: None },
                &mut policy,
                &mut probe,
            );
            prop_assert!(out.n_probes() <= n);
            prop_assert_eq!(out.selected.len(), 1);
            // Either satisfied, or every database was probed.
            prop_assert!(out.satisfied || out.n_probes() == n);
            // The final expected value is consistent with a recompute.
            let (_, score) = crate::selection::best_set(
                state.rds(), 1, CorrectnessMetric::Absolute);
            prop_assert!((score - out.expected).abs() < 1e-9);
        }

        #[test]
        fn prop_threshold_zero_never_probes(state in arb_state()) {
            let mut state = state;
            let mut policy = GreedyPolicy;
            let mut probe = |_: usize| -> f64 { panic!("no probe at t=0") };
            let out = apro(
                &mut state,
                AproConfig { k: 1, threshold: 0.0, metric: CorrectnessMetric::Partial, max_probes: None },
                &mut policy,
                &mut probe,
            );
            prop_assert_eq!(out.n_probes(), 0);
            prop_assert!(out.satisfied);
        }
    }
}
