//! The probing-policy trait and the simple comparison policies.

use crate::correctness::CorrectnessMetric;
use crate::expected::RdState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chooses which database `APro` probes next (paper Figure 11, step (6):
/// `SelectDb`).
pub trait ProbePolicy: Send {
    /// Stable policy name for reports.
    fn name(&self) -> &str;

    /// The next database to probe, or `None` when every database is
    /// already probed. `k` and `metric` describe the selection task the
    /// certainty is measured against.
    fn select_db(&mut self, state: &RdState, k: usize, metric: CorrectnessMetric) -> Option<usize>;
}

/// Uniformly random choice among unprobed databases — the naive
/// baseline a useful policy must beat.
#[derive(Debug)]
pub struct RandomPolicy {
    rng: StdRng,
}

impl RandomPolicy {
    /// Creates the policy with a seed (deterministic experiments).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ProbePolicy for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }

    fn select_db(&mut self, state: &RdState, _k: usize, _m: CorrectnessMetric) -> Option<usize> {
        let unprobed = state.unprobed();
        if unprobed.is_empty() {
            None
        } else {
            Some(unprobed[self.rng.gen_range(0..unprobed.len())])
        }
    }
}

/// Probes the unprobed database whose RD has the highest mean — i.e.
/// the database that currently *looks* most relevant. The natural
/// "verify the leader" heuristic.
#[derive(Debug, Default)]
pub struct ByEstimatePolicy;

impl ProbePolicy for ByEstimatePolicy {
    fn name(&self) -> &str {
        "by-estimate"
    }

    fn select_db(&mut self, state: &RdState, _k: usize, _m: CorrectnessMetric) -> Option<usize> {
        state.unprobed().into_iter().max_by(|&a, &b| {
            state.rds()[a]
                .mean()
                .partial_cmp(&state.rds()[b].mean())
                .expect("finite means")
                .then(b.cmp(&a)) // tie → lower index
        })
    }
}

/// Probes the unprobed database with the highest RD variance — i.e. the
/// database whose relevancy we know least about.
#[derive(Debug, Default)]
pub struct UncertaintyPolicy;

impl ProbePolicy for UncertaintyPolicy {
    fn name(&self) -> &str {
        "max-uncertainty"
    }

    fn select_db(&mut self, state: &RdState, _k: usize, _m: CorrectnessMetric) -> Option<usize> {
        state.unprobed().into_iter().max_by(|&a, &b| {
            state.rds()[a]
                .variance()
                .partial_cmp(&state.rds()[b].variance())
                .expect("finite variances")
                .then(b.cmp(&a))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_stats::Discrete;

    fn d(pairs: &[(f64, f64)]) -> Discrete {
        Discrete::from_weighted(pairs).unwrap()
    }

    fn state() -> RdState {
        RdState::new(vec![
            d(&[(10.0, 1.0)]),              // mean 10, var 0
            d(&[(0.0, 0.5), (40.0, 0.5)]),  // mean 20, var 400
            d(&[(29.0, 0.5), (31.0, 0.5)]), // mean 30, var 1
        ])
    }

    #[test]
    fn by_estimate_picks_highest_mean() {
        let mut p = ByEstimatePolicy;
        assert_eq!(
            p.select_db(&state(), 1, CorrectnessMetric::Absolute),
            Some(2)
        );
    }

    #[test]
    fn uncertainty_picks_highest_variance() {
        let mut p = UncertaintyPolicy;
        assert_eq!(
            p.select_db(&state(), 1, CorrectnessMetric::Absolute),
            Some(1)
        );
    }

    #[test]
    fn random_picks_only_unprobed() {
        let mut s = state();
        s.probe(1, 40.0);
        s.probe(2, 29.0);
        let mut p = RandomPolicy::new(0);
        for _ in 0..10 {
            assert_eq!(p.select_db(&s, 1, CorrectnessMetric::Absolute), Some(0));
        }
        s.probe(0, 10.0);
        assert_eq!(p.select_db(&s, 1, CorrectnessMetric::Absolute), None);
    }

    #[test]
    fn policies_skip_probed_databases() {
        let mut s = state();
        s.probe(2, 31.0); // highest mean now probed
        let mut p = ByEstimatePolicy;
        // Impulse at 31 is probed; among unprobed {0, 1}, db1 has the
        // higher mean.
        assert_eq!(p.select_db(&s, 1, CorrectnessMetric::Absolute), Some(1));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RandomPolicy::new(0).name(), "random");
        assert_eq!(ByEstimatePolicy.name(), "by-estimate");
        assert_eq!(UncertaintyPolicy.name(), "max-uncertainty");
    }
}
