//! The paper's greedy probing policy (Section 5.4, Figures 12/13).
//!
//! `APro` halts as soon as some `DBk` reaches the required certainty, so
//! the greedy policy probes the database that is expected to *raise the
//! maximum achievable certainty the most*. Formally, the **usefulness**
//! of probing `db_i` is the expectation, over `db_i`'s RD, of the
//! post-probe maximum `E[Cor(DBk)]`:
//!
//! ```text
//! usefulness(i) = Σ_{(v, p) ∈ RD_i}  p · max_{DBk} E[Cor(DBk) | r_i = v]
//! ```
//!
//! and the policy probes `argmax_i usefulness(i)`.
//!
//! [`GreedyPolicy::usefulness`] is the *reference* evaluation (a cloned
//! state re-probed per outcome). [`GreedyPolicy::select_db`] — the hot
//! path APro hits once per probe — instead scores all candidates through
//! [`crate::engine`]: the same quantities via incremental leave-one-out
//! Poisson-binomial patches, fanned across cores.

use crate::correctness::CorrectnessMetric;
use crate::engine;
use crate::expected::RdState;
use crate::probing::policy::ProbePolicy;

/// The greedy expected-usefulness policy.
#[derive(Debug, Default)]
pub struct GreedyPolicy;

impl GreedyPolicy {
    /// The expected usefulness of probing database `i` — the reference
    /// evaluation (exposed for the worked-example tests, diagnostics,
    /// and the cost-aware policy's per-candidate gains; `select_db` uses
    /// the equivalent incremental engine).
    pub fn usefulness(state: &RdState, i: usize, k: usize, metric: CorrectnessMetric) -> f64 {
        engine::naive_usefulness(state, i, k, metric)
    }
}

impl ProbePolicy for GreedyPolicy {
    fn name(&self) -> &str {
        "greedy"
    }

    fn select_db(&mut self, state: &RdState, k: usize, metric: CorrectnessMetric) -> Option<usize> {
        engine::usefulness_all(state, k, metric)
            .into_iter()
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("usefulness is finite")
                    .then(b.0.cmp(&a.0)) // tie → lower index
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_stats::Discrete;

    fn d(pairs: &[(f64, f64)]) -> Discrete {
        Discrete::from_weighted(pairs).unwrap()
    }

    /// Paper Figure 5(d) RDs: db1 ~ {50: .4, 100: .5, 150: .1},
    /// db2 ~ {65: .1, 130: .9}.
    fn paper_state() -> RdState {
        RdState::new(vec![
            d(&[(50.0, 0.4), (100.0, 0.5), (150.0, 0.1)]),
            d(&[(65.0, 0.1), (130.0, 0.9)]),
        ])
    }

    #[test]
    fn paper_example6_usefulness_case_analysis() {
        // Mirroring Figure 13's case analysis on the Example 4 RDs
        // (hand-derived ground truth, k = 1, absolute metric):
        //
        // Probing db1:
        //   r1 = 50  (p .4): db2 always wins           → usefulness 1.0
        //   r1 = 100 (p .5): db2 wins iff 130 (p .9)   → usefulness 0.9
        //   r1 = 150 (p .1): db1 always wins           → usefulness 1.0
        //   expected = .4 + .45 + .1                    = 0.95
        //
        // Probing db2:
        //   r2 = 65  (p .1): P(r1 > 65) = .6           → usefulness 0.6
        //   r2 = 130 (p .9): P(r1 < 130) = .9          → usefulness 0.9
        //   expected = .06 + .81                        = 0.87
        let state = paper_state();
        let u1 = GreedyPolicy::usefulness(&state, 0, 1, CorrectnessMetric::Absolute);
        let u2 = GreedyPolicy::usefulness(&state, 1, 1, CorrectnessMetric::Absolute);
        assert!((u1 - 0.95).abs() < 1e-12, "u1={u1}");
        assert!((u2 - 0.87).abs() < 1e-12, "u2={u2}");
    }

    #[test]
    fn paper_example6_greedy_picks_db1() {
        // The paper's greedy policy picks db1 to probe (the higher
        // expected usefulness), matching Example 6's conclusion.
        let mut p = GreedyPolicy;
        let pick = p.select_db(&paper_state(), 1, CorrectnessMetric::Absolute);
        assert_eq!(pick, Some(0));
    }

    #[test]
    fn usefulness_at_least_current_certainty() {
        // Probing can only add information: for every database, the
        // expected post-probe max certainty is >= the current max
        // certainty (expectation of a max >= max of expectation).
        let state = paper_state();
        let (_, now) = crate::selection::best_set(state.rds(), 1, CorrectnessMetric::Absolute);
        for i in 0..2 {
            let u = GreedyPolicy::usefulness(&state, i, 1, CorrectnessMetric::Absolute);
            assert!(u >= now - 1e-12, "db{i}: usefulness {u} < current {now}");
        }
    }

    #[test]
    fn probing_an_impulse_is_useless() {
        // An already-probed (impulse) database's usefulness equals the
        // current certainty exactly — no information gained.
        let mut state = paper_state();
        state.probe(0, 100.0);
        let (_, now) = crate::selection::best_set(state.rds(), 1, CorrectnessMetric::Absolute);
        let u = GreedyPolicy::usefulness(&state, 0, 1, CorrectnessMetric::Absolute);
        assert!((u - now).abs() < 1e-12);
        // And select_db never returns it.
        let mut p = GreedyPolicy;
        assert_eq!(p.select_db(&state, 1, CorrectnessMetric::Absolute), Some(1));
    }

    #[test]
    fn all_probed_returns_none() {
        let mut state = paper_state();
        state.probe(0, 100.0);
        state.probe(1, 130.0);
        let mut p = GreedyPolicy;
        assert_eq!(p.select_db(&state, 1, CorrectnessMetric::Absolute), None);
    }

    #[test]
    fn works_under_partial_metric() {
        let state = RdState::new(vec![
            d(&[(10.0, 0.5), (90.0, 0.5)]),
            d(&[(50.0, 1.0)]),
            d(&[(40.0, 0.5), (60.0, 0.5)]),
        ]);
        let mut p = GreedyPolicy;
        let pick = p.select_db(&state, 2, CorrectnessMetric::Partial);
        assert!(pick.is_some());
        // db1 is an impulse; probing it is useless, so greedy must pick
        // one of the uncertain databases.
        assert_ne!(pick, Some(1));
    }
}
