//! Adaptive probing: the `APro` algorithm and its probing policies
//! (paper Section 5).
//!
//! `APro` (Figure 11) starts from the RD-based selection; while no
//! candidate set reaches the user-required certainty `t`, it probes one
//! more database — turning that database's RD into an impulse — and
//! re-evaluates. The *policy* decides which database to probe:
//!
//! | policy | paper role |
//! |---|---|
//! | [`GreedyPolicy`] | the paper's contribution (Section 5.4): probe the database with the highest expected usefulness |
//! | [`RandomPolicy`] | naive baseline |
//! | [`ByEstimatePolicy`] | "probe the seemingly most relevant first" heuristic |
//! | [`UncertaintyPolicy`] | "probe the most uncertain RD" heuristic |
//! | [`OptimalPolicy`] | the exhaustive expectimax optimum the paper calls `O(n!)` and impractical — implemented for small `n` as a yardstick |
//! | [`CostAwareGreedyPolicy`] | the paper's Section 5.2 extension: greedy per unit probe cost ([`cost`]) |

pub mod apro;
pub mod cost;
pub mod greedy;
pub mod optimal;
pub mod policy;

pub use apro::{apro, AproConfig, AproOutcome, AproSession, ProbeRecord};
pub use cost::{apro_with_costs, CostAwareGreedyPolicy, ProbeCosts};
pub use greedy::GreedyPolicy;
pub use optimal::OptimalPolicy;
pub use policy::{ByEstimatePolicy, ProbePolicy, RandomPolicy, UncertaintyPolicy};
