//! Cost-aware probing (paper Section 5.2).
//!
//! The paper assumes unit probe costs "to simplify the discussion" and
//! notes the methods "can be extended to scenarios where different
//! databases have different probing costs" — e.g. a slow overseas site
//! vs a fast local one, or metered APIs. This module is that extension:
//!
//! * [`ProbeCosts`] — per-database probe costs;
//! * [`CostAwareGreedyPolicy`] — greedy by *certainty gain per unit
//!   cost* instead of raw expected usefulness;
//! * [`apro_with_costs`] — `APro` with cost accounting and an optional
//!   cost budget.
//!
//! With uniform costs the policy reduces exactly to [`GreedyPolicy`]'s
//! ordering, so the extension is conservative. Caveat (see
//! `examples/cost_aware_probing.rs`): per-step gain-per-cost is
//! *myopic* — when the expensive databases are also the informative
//! ones, paying is optimal and the cost-blind greedy can buy more
//! correctness per unit of budget; beating it there requires
//! budget-level lookahead over the probe sequence.

use crate::correctness::CorrectnessMetric;
use crate::expected::RdState;
use crate::probing::apro::{apro, AproConfig, AproOutcome};
use crate::probing::greedy::GreedyPolicy;
use crate::probing::policy::ProbePolicy;
use crate::selection::best_set_score_quick;
use serde::{Deserialize, Serialize};

/// Per-database probe costs (strictly positive).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeCosts {
    costs: Vec<f64>,
}

impl ProbeCosts {
    /// Builds from explicit per-database costs.
    ///
    /// # Panics
    /// Panics on empty input or non-positive/non-finite costs.
    pub fn new(costs: Vec<f64>) -> Self {
        assert!(!costs.is_empty(), "need at least one database");
        assert!(
            costs.iter().all(|&c| c.is_finite() && c > 0.0),
            "probe costs must be positive and finite"
        );
        Self { costs }
    }

    /// Unit costs for `n` databases (the paper's simplifying case).
    pub fn uniform(n: usize) -> Self {
        Self::new(vec![1.0; n])
    }

    /// The cost of probing database `i`.
    pub fn cost(&self, i: usize) -> f64 {
        self.costs[i]
    }

    /// Number of databases covered.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Always false (constructor rejects empty input).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total cost of a probe sequence.
    pub fn total(&self, probes: impl IntoIterator<Item = usize>) -> f64 {
        probes.into_iter().map(|i| self.cost(i)).sum()
    }
}

/// Greedy probing by expected certainty gain *per unit cost*:
///
/// ```text
/// score(i) = ( usefulness(i) − current_certainty ) / cost(i)
/// ```
///
/// The marginal-value-per-dollar rule — the natural generalization of
/// the paper's greedy policy to heterogeneous costs.
#[derive(Debug)]
pub struct CostAwareGreedyPolicy {
    costs: ProbeCosts,
}

impl CostAwareGreedyPolicy {
    /// Creates the policy over the given cost vector.
    pub fn new(costs: ProbeCosts) -> Self {
        Self { costs }
    }

    /// The per-cost gain score of probing database `i`.
    pub fn gain_per_cost(
        &self,
        state: &RdState,
        i: usize,
        k: usize,
        metric: CorrectnessMetric,
    ) -> f64 {
        let current = best_set_score_quick(state.rds(), k, metric);
        let usefulness = GreedyPolicy::usefulness(state, i, k, metric);
        (usefulness - current).max(0.0) / self.costs.cost(i)
    }
}

impl ProbePolicy for CostAwareGreedyPolicy {
    fn name(&self) -> &str {
        "cost-aware-greedy"
    }

    fn select_db(&mut self, state: &RdState, k: usize, metric: CorrectnessMetric) -> Option<usize> {
        assert_eq!(
            self.costs.len(),
            state.len(),
            "cost vector does not cover the databases"
        );
        let current = best_set_score_quick(state.rds(), k, metric);
        state
            .unprobed()
            .into_iter()
            .map(|i| {
                let gain = (GreedyPolicy::usefulness(state, i, k, metric) - current).max(0.0);
                (i, gain / self.costs.cost(i))
            })
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("scores are finite")
                    .then(b.0.cmp(&a.0)) // tie → lower index
            })
            .map(|(i, _)| i)
    }
}

/// `APro` with probe-cost accounting: behaves like
/// [`apro`](crate::probing::apro::apro) but additionally
/// stops once the accumulated probe cost would exceed `max_cost` (if
/// given) and reports the total cost spent.
pub fn apro_with_costs(
    state: &mut RdState,
    config: AproConfig,
    costs: &ProbeCosts,
    max_cost: Option<f64>,
    policy: &mut dyn ProbePolicy,
    probe_fn: &mut dyn FnMut(usize) -> f64,
) -> (AproOutcome, f64) {
    assert_eq!(
        costs.len(),
        state.len(),
        "cost vector does not cover the databases"
    );
    let mut spent = 0.0f64;
    // Budget enforcement wraps the probe function: once the next probe
    // would blow the budget we report exhaustion by probing nothing —
    // implemented by running APro one probe at a time.
    let mut outcome = apro(
        state,
        AproConfig {
            max_probes: Some(0),
            ..config
        },
        policy,
        probe_fn,
    );
    while !outcome.satisfied {
        let Some(next) = policy.select_db(state, config.k, config.metric) else {
            break;
        };
        if let Some(budget) = max_cost {
            if spent + costs.cost(next) > budget + 1e-12 {
                break;
            }
        }
        if let Some(max) = config.max_probes {
            if outcome.n_probes() >= max {
                break;
            }
        }
        let actual = probe_fn(next);
        spent += costs.cost(next);
        state.probe(next, actual);
        let (sel, exp) = crate::selection::best_set(state.rds(), config.k, config.metric);
        outcome.probes.push(crate::probing::apro::ProbeRecord {
            db: next,
            actual,
            selected_after: sel.clone(),
            expected_after: exp,
        });
        outcome.selected = sel;
        outcome.expected = exp;
        outcome.satisfied = exp >= config.threshold;
    }
    (outcome, spent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_stats::Discrete;

    fn d(pairs: &[(f64, f64)]) -> Discrete {
        Discrete::from_weighted(pairs).unwrap()
    }

    /// Paper Figure 5(d) RDs plus a third uncertain database.
    fn state() -> RdState {
        RdState::new(vec![
            d(&[(50.0, 0.4), (100.0, 0.5), (150.0, 0.1)]),
            d(&[(65.0, 0.1), (130.0, 0.9)]),
            d(&[(10.0, 0.5), (120.0, 0.5)]),
        ])
    }

    #[test]
    fn uniform_costs_match_plain_greedy() {
        let state = state();
        let mut plain = GreedyPolicy;
        let mut costed = CostAwareGreedyPolicy::new(ProbeCosts::uniform(3));
        assert_eq!(
            plain.select_db(&state, 1, CorrectnessMetric::Absolute),
            costed.select_db(&state, 1, CorrectnessMetric::Absolute)
        );
    }

    #[test]
    fn expensive_database_is_deprioritized() {
        let state = state();
        let mut plain = GreedyPolicy;
        let preferred = plain
            .select_db(&state, 1, CorrectnessMetric::Absolute)
            .unwrap();
        // Make the plainly-preferred database prohibitively expensive.
        let mut costs = vec![1.0; 3];
        costs[preferred] = 1_000.0;
        let mut costed = CostAwareGreedyPolicy::new(ProbeCosts::new(costs));
        let pick = costed
            .select_db(&state, 1, CorrectnessMetric::Absolute)
            .unwrap();
        assert_ne!(
            pick, preferred,
            "cost-aware policy must route around the expensive db"
        );
    }

    #[test]
    fn budget_is_respected() {
        let mut state = state();
        let costs = ProbeCosts::new(vec![2.0, 2.0, 2.0]);
        let mut policy = CostAwareGreedyPolicy::new(costs.clone());
        let mut probe_fn = |i: usize| [100.0, 130.0, 120.0][i];
        let f: &mut dyn FnMut(usize) -> f64 = &mut probe_fn;
        let (outcome, spent) = apro_with_costs(
            &mut state,
            AproConfig {
                k: 1,
                threshold: 1.0,
                metric: CorrectnessMetric::Absolute,
                max_probes: None,
            },
            &costs,
            Some(3.0), // only one 2.0-cost probe fits
            &mut policy,
            f,
        );
        assert_eq!(outcome.n_probes(), 1);
        assert!((spent - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unbounded_budget_reaches_threshold() {
        let mut state = state();
        let costs = ProbeCosts::new(vec![1.0, 5.0, 2.0]);
        let mut policy = CostAwareGreedyPolicy::new(costs.clone());
        let mut probe_fn = |i: usize| [100.0, 130.0, 10.0][i];
        let f: &mut dyn FnMut(usize) -> f64 = &mut probe_fn;
        let (outcome, spent) = apro_with_costs(
            &mut state,
            AproConfig {
                k: 1,
                threshold: 1.0,
                metric: CorrectnessMetric::Absolute,
                max_probes: None,
            },
            &costs,
            None,
            &mut policy,
            f,
        );
        assert!(outcome.satisfied);
        assert!(spent > 0.0);
        assert!((spent - costs.total(outcome.probes.iter().map(|p| p.db))).abs() < 1e-12);
    }

    #[test]
    fn zero_threshold_spends_nothing() {
        let mut state = state();
        let costs = ProbeCosts::uniform(3);
        let mut policy = CostAwareGreedyPolicy::new(costs.clone());
        let mut probe_fn = |_: usize| -> f64 { panic!("no probes expected") };
        let f: &mut dyn FnMut(usize) -> f64 = &mut probe_fn;
        let (outcome, spent) = apro_with_costs(
            &mut state,
            AproConfig {
                k: 1,
                threshold: 0.0,
                metric: CorrectnessMetric::Absolute,
                max_probes: None,
            },
            &costs,
            Some(100.0),
            &mut policy,
            f,
        );
        assert_eq!(outcome.n_probes(), 0);
        assert_eq!(spent, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_costs() {
        ProbeCosts::new(vec![1.0, 0.0]);
    }

    #[test]
    fn gain_per_cost_scales_inversely_with_cost() {
        let state = state();
        let cheap = CostAwareGreedyPolicy::new(ProbeCosts::new(vec![1.0, 1.0, 1.0]));
        let dear = CostAwareGreedyPolicy::new(ProbeCosts::new(vec![4.0, 4.0, 4.0]));
        for i in 0..3 {
            let g1 = cheap.gain_per_cost(&state, i, 1, CorrectnessMetric::Absolute);
            let g4 = dear.gain_per_cost(&state, i, 1, CorrectnessMetric::Absolute);
            assert!((g1 - 4.0 * g4).abs() < 1e-12, "db{i}");
        }
    }
}
