//! The exhaustive optimal probing policy (a yardstick for small `n`).
//!
//! The paper states the probe-count-optimal policy exists but costs
//! `O(n!)` and is "not practical for real applications" (Section 5.3).
//! We implement it anyway, for small instances, so the greedy policy can
//! be benchmarked against the true optimum (ablation A1): expectimax
//! over probe sequences minimizing the expected number of probes until
//! some `DBk` reaches the threshold.

use crate::correctness::CorrectnessMetric;
use crate::expected::RdState;
use crate::probing::policy::ProbePolicy;
use crate::selection::best_set;

/// Expectimax-optimal probe selection. Exponential: guarded to small
/// instances (`n ≤ max_databases`, RD supports ≤ `max_support`).
#[derive(Debug)]
pub struct OptimalPolicy {
    threshold: f64,
    /// Hard cap on mediated databases (default 6).
    pub max_databases: usize,
    /// Hard cap on RD support sizes (default 4).
    pub max_support: usize,
}

impl OptimalPolicy {
    /// Creates the policy for a given certainty threshold `t` (the
    /// optimal choice depends on the stopping condition, so the policy
    /// must know it).
    pub fn new(threshold: f64) -> Self {
        Self {
            threshold,
            max_databases: 6,
            max_support: 4,
        }
    }

    fn guard(&self, state: &RdState) {
        assert!(
            state.len() <= self.max_databases,
            "OptimalPolicy is exponential; {} databases exceed the cap of {}",
            state.len(),
            self.max_databases
        );
        for rd in state.rds() {
            assert!(
                rd.len() <= self.max_support,
                "OptimalPolicy is exponential; RD support {} exceeds the cap of {}",
                rd.len(),
                self.max_support
            );
        }
    }

    /// Expected number of *further* probes needed to reach the
    /// threshold from `state`, following the optimal policy.
    fn expected_cost(&self, state: &RdState, k: usize, metric: CorrectnessMetric) -> f64 {
        let (_, score) = best_set(state.rds(), k, metric);
        if score >= self.threshold {
            return 0.0;
        }
        let unprobed = state.unprobed();
        if unprobed.is_empty() {
            // Cannot improve further; treat as terminal.
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for i in unprobed {
            let mut cost = 1.0;
            for &(v, p) in state.rds()[i].points() {
                let next = state.with_hypothetical(i, v);
                cost += p * self.expected_cost(&next, k, metric);
            }
            best = best.min(cost);
        }
        best
    }
}

impl ProbePolicy for OptimalPolicy {
    fn name(&self) -> &str {
        "optimal"
    }

    fn select_db(&mut self, state: &RdState, k: usize, metric: CorrectnessMetric) -> Option<usize> {
        self.guard(state);
        let unprobed = state.unprobed();
        if unprobed.is_empty() {
            return None;
        }
        // Each candidate's expectimax subtree is independent, so the
        // top-level scan fans across cores like the greedy engine's;
        // index-ordered collection keeps the argmin deterministic.
        let this = &*self;
        crate::par::par_map_indexed(unprobed.len(), 2, |c| {
            let i = unprobed[c];
            let mut cost = 1.0;
            for &(v, p) in state.rds()[i].points() {
                let next = state.with_hypothetical(i, v);
                cost += p * this.expected_cost(&next, k, metric);
            }
            (i, cost)
        })
        .into_iter()
        .min_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("costs are finite")
                .then(a.0.cmp(&b.0))
        })
        .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probing::greedy::GreedyPolicy;
    use mp_stats::Discrete;

    fn d(pairs: &[(f64, f64)]) -> Discrete {
        Discrete::from_weighted(pairs).unwrap()
    }

    fn paper_state() -> RdState {
        RdState::new(vec![
            d(&[(50.0, 0.4), (100.0, 0.5), (150.0, 0.1)]),
            d(&[(65.0, 0.1), (130.0, 0.9)]),
        ])
    }

    #[test]
    fn agrees_with_greedy_on_two_databases() {
        // With two databases and one probe to make, the usefulness
        // argmax and the cost argmin coincide here.
        let state = paper_state();
        let mut opt = OptimalPolicy::new(0.95);
        let mut grd = GreedyPolicy;
        assert_eq!(
            opt.select_db(&state, 1, CorrectnessMetric::Absolute),
            grd.select_db(&state, 1, CorrectnessMetric::Absolute)
        );
    }

    #[test]
    fn already_satisfied_state_costs_zero() {
        let state = paper_state();
        let opt = OptimalPolicy::new(0.5); // current certainty .85 ≥ .5
        assert_eq!(
            opt.expected_cost(&state, 1, CorrectnessMetric::Absolute),
            0.0
        );
    }

    #[test]
    fn cost_is_at_least_one_when_below_threshold() {
        let state = paper_state();
        let opt = OptimalPolicy::new(0.99);
        let c = opt.expected_cost(&state, 1, CorrectnessMetric::Absolute);
        assert!(c >= 1.0, "cost={c}");
        assert!(c <= 2.0, "two databases bound the probes: {c}");
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn guard_rejects_large_instances() {
        let rds: Vec<Discrete> = (0..8).map(|i| Discrete::impulse(i as f64)).collect();
        let state = RdState::new(rds);
        let mut opt = OptimalPolicy::new(0.9);
        opt.select_db(&state, 1, CorrectnessMetric::Absolute);
    }

    #[test]
    fn exhausted_state_returns_none() {
        let mut state = paper_state();
        state.probe(0, 1.0);
        state.probe(1, 2.0);
        let mut opt = OptimalPolicy::new(0.9);
        assert_eq!(opt.select_db(&state, 1, CorrectnessMetric::Absolute), None);
    }
}
