//! Result fusion (the paper's "task 2", Section 1): merging the result
//! lists returned by the selected databases into one ranked list.
//!
//! The paper focuses on database selection and leaves fusion to standard
//! techniques; we implement score-normalized merging (each database's
//! scores are divided by its own maximum before interleaving), the
//! classic remedy for incomparable cross-engine scores.

use mp_hidden::SearchResponse;
use mp_index::DocId;
use serde::{Deserialize, Serialize};

/// One fused result: a document from one of the selected databases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusedHit {
    /// Index of the source database within the mediator.
    pub db: usize,
    /// Document id within that database.
    pub doc: DocId,
    /// Normalized score in `(0, 1]`.
    pub score: f64,
}

/// Merges per-database responses into one ranked list of at most
/// `limit` hits.
///
/// Scores are max-normalized per database; ties break by `(db, doc)` so
/// the output is deterministic.
pub fn fuse(responses: &[(usize, SearchResponse)], limit: usize) -> Vec<FusedHit> {
    let mut hits = Vec::new();
    for (db, resp) in responses {
        let max = resp.top_docs.iter().map(|d| d.score).fold(0.0f64, f64::max);
        if max <= 0.0 {
            continue;
        }
        for d in &resp.top_docs {
            hits.push(FusedHit {
                db: *db,
                doc: d.doc,
                score: d.score / max,
            });
        }
    }
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then(a.db.cmp(&b.db))
            .then(a.doc.cmp(&b.doc))
    });
    hits.truncate(limit);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_index::ScoredDoc;

    fn resp(scores: &[f64]) -> SearchResponse {
        SearchResponse {
            match_count: scores.len() as u32,
            top_docs: scores
                .iter()
                .enumerate()
                .map(|(i, &s)| ScoredDoc {
                    doc: DocId(i as u32),
                    score: s,
                })
                .collect(),
        }
    }

    #[test]
    fn normalizes_per_database() {
        // db0 scores in [0, 0.2]; db1 in [0, 0.9]. After max-norm both
        // leaders tie at 1.0 and db0 wins the tie deterministically.
        let fused = fuse(&[(0, resp(&[0.2, 0.1])), (1, resp(&[0.9, 0.45]))], 10);
        assert_eq!(fused.len(), 4);
        assert_eq!(fused[0].db, 0);
        assert_eq!(fused[1].db, 1);
        assert!((fused[0].score - 1.0).abs() < 1e-12);
        assert!((fused[1].score - 1.0).abs() < 1e-12);
        assert!((fused[2].score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn respects_limit() {
        let fused = fuse(&[(0, resp(&[0.5, 0.4, 0.3]))], 2);
        assert_eq!(fused.len(), 2);
    }

    #[test]
    fn skips_empty_and_zero_score_responses() {
        let fused = fuse(&[(0, resp(&[])), (1, resp(&[0.7]))], 10);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].db, 1);
    }

    #[test]
    fn output_is_sorted_descending() {
        let fused = fuse(&[(0, resp(&[0.9, 0.3])), (1, resp(&[0.8, 0.2, 0.6]))], 10);
        for w in fused.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
