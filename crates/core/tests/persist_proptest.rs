//! Satellite (d): the JSON persistence envelope is lossless over
//! arbitrary trained libraries — `library_from_json(library_to_json(l))
//! == l` exactly (`EdLibrary`'s `PartialEq` compares bin edges and
//! counts bit-for-bit), whatever mix of databases, query arities, and
//! estimate/actual magnitudes produced the library.

use mp_core::{library_from_json, library_to_json, CoreConfig, EdLibrary};
use proptest::prelude::*;

/// Builds a library by replaying generated observations. Ops are
/// `(db selector, n_terms, (estimate, actual))` — the inner pair keeps
/// each op a 3-tuple, the widest the vendored proptest composes.
fn library_from_ops(
    n_databases: usize,
    threshold: f64,
    ops: &[(u8, usize, (f64, f64))],
) -> EdLibrary {
    let mut lib = EdLibrary::empty(n_databases, CoreConfig::default().with_threshold(threshold));
    for &(db, n_terms, (estimate, actual)) in ops {
        lib.record(usize::from(db) % n_databases, n_terms, estimate, actual);
    }
    lib
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(48))]

    #[test]
    fn json_roundtrip_is_lossless(
        n_databases in 1usize..5,
        threshold in 1.0f64..30.0,
        ops in proptest::collection::vec(
            (0u8..8, 1usize..5, (0.0f64..500.0, 0.0f64..500.0)),
            0..60,
        ),
    ) {
        let lib = library_from_ops(n_databases, threshold, &ops);
        let json = library_to_json(&lib).expect("serialization is total");
        let back = library_from_json(&json).expect("own output must parse");
        prop_assert_eq!(&back, &lib, "round-trip changed the library");
        // And the round-trip is a fixed point: re-serializing the
        // loaded library yields byte-identical JSON.
        let json2 = library_to_json(&back).expect("serialization is total");
        prop_assert_eq!(json2, json, "round-trip JSON is not canonical");
    }

    /// Degenerate magnitudes (zero estimates, zero actuals, huge
    /// errors) survive the trip too — these exercise the histogram's
    /// overflow bins and the `est_floor` clamp.
    #[test]
    fn extreme_observations_roundtrip(
        est_zero in 0u8..2,
        actual in 0.0f64..1e9,
    ) {
        let mut lib = EdLibrary::empty(2, CoreConfig::default().with_threshold(10.0));
        let estimate = if est_zero == 0 { 0.0 } else { 1e-12 };
        lib.record(0, 2, estimate, actual);
        lib.record(1, 3, actual, estimate);
        let back = library_from_json(&library_to_json(&lib).expect("serializes"))
            .expect("parses");
        prop_assert_eq!(back, lib);
    }
}
