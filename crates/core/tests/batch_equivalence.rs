//! Batched-execution equivalence: the lock-step batch executor
//! ([`mp_core::batch`]) is indistinguishable from running each request
//! through the per-query engine in isolation — bit-for-bit.
//!
//! The suite builds *twin stacks* (independent fleets from identical
//! deterministic inputs, so probe counters never cross-contaminate),
//! runs one twin through `search_batch_with_rds` and the other through
//! per-request `search_with_rds`, and asserts for batches with every
//! term-overlap shape (identical duplicates, disjoint, partial overlap,
//! singletons, empty):
//!
//! * the full [`MetasearchResult`](mp_core::MetasearchResult) compares
//!   equal per request — selection order, certainty bits, probe trace,
//!   satisfied flag, fused hits;
//! * **probe accounting** is exactly equal per database: batching never
//!   adds, saves, or reorders a probe's cost onto another database;
//! * both hold on the **flat** and the **sharded** backend, across
//!   shard counts {1, 2, 3, 8}.

use std::sync::Arc;

use mp_core::probing::GreedyPolicy;
use mp_core::{
    AproConfig, BatchQuery, CoreConfig, CorrectnessMetric, EdLibrary, IndependenceEstimator,
    MetasearchResult, Metasearcher, RelevancyDef, ShardAssignment, ShardedMetasearcher,
};
use mp_hidden::{ContentSummary, HiddenWebDatabase, Mediator, SimulatedHiddenDb};
use mp_index::{Document, IndexBuilder, InvertedIndex};
use mp_text::TermId;
use mp_workload::Query;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn t(i: u32) -> TermId {
    TermId(i)
}

/// Deterministic per-database corpora from generated `(docs, pattern)`
/// specs — same construction as the shard equivalence suite, so
/// estimates err differently per database and probing does real work.
fn build_indexes(specs: &[(u8, u8)]) -> Vec<InvertedIndex> {
    specs
        .iter()
        .enumerate()
        .map(|(d, &(docs, pat))| {
            let mut b = IndexBuilder::new();
            let n_docs = 4 + u32::from(docs) % 40;
            for i in 0..n_docs {
                let mut doc = Document::new();
                if i % (2 + u32::from(pat) % 3) == 0 {
                    doc.add_term(t(0), 1);
                }
                if (i + d as u32).is_multiple_of(3) {
                    doc.add_term(t(1), 1);
                }
                if pat % 2 == 0 && i % 2 == 0 {
                    doc.add_term(t(2), 1);
                }
                doc.add_term(t(3), 1);
                b.add(doc);
            }
            b.build()
        })
        .collect()
}

fn stack(indexes: &[InvertedIndex]) -> Mediator {
    let dbs: Vec<Arc<dyn HiddenWebDatabase>> = indexes
        .iter()
        .enumerate()
        .map(|(i, ix)| {
            Arc::new(SimulatedHiddenDb::new(format!("db-{i}"), ix.clone()))
                as Arc<dyn HiddenWebDatabase>
        })
        .collect();
    let summaries = indexes.iter().map(ContentSummary::cooperative).collect();
    Mediator::new(dbs, summaries)
}

fn train_queries() -> Vec<Query> {
    let mut qs = Vec::new();
    for _ in 0..3 {
        qs.push(Query::new([t(0), t(1)]));
        qs.push(Query::new([t(0), t(3)]));
        qs.push(Query::new([t(1), t(2)]));
        qs.push(Query::new([t(2), t(3)]));
    }
    qs
}

fn library(mediator: &Mediator) -> EdLibrary {
    let config = CoreConfig::default().with_threshold(10.0);
    let lib = EdLibrary::train(
        mediator,
        &IndependenceEstimator,
        RelevancyDef::DocFrequency,
        &train_queries(),
        &config,
    );
    mediator.reset_probes();
    lib
}

fn flat_twin(indexes: &[InvertedIndex], lib: &EdLibrary) -> Metasearcher {
    Metasearcher::with_library(
        stack(indexes),
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        lib.clone(),
    )
}

fn flat_probe_counts(ms: &Metasearcher) -> Vec<u64> {
    (0..ms.mediator().len())
        .map(|i| ms.mediator().db(i).probe_count())
        .collect()
}

fn sharded_probe_counts(sharded: &ShardedMetasearcher) -> Vec<u64> {
    (0..sharded.n_databases())
        .map(|g| {
            let shard = &sharded.shards()[sharded.plan().shard_of(g)];
            shard
                .mediator()
                .expect("owning shard is non-empty")
                .db(sharded.plan().local_of(g))
                .probe_count()
        })
        .collect()
}

fn apro_config(k: usize, threshold: f64) -> AproConfig {
    AproConfig {
        k,
        threshold,
        metric: CorrectnessMetric::Partial,
        max_probes: None,
    }
}

/// Batch items for `queries` on `ms`'s RD derivation (the RD cache in
/// the serve layer plays this role in production).
fn items<'a>(ms: &Metasearcher, queries: &'a [Query], config: AproConfig) -> Vec<BatchQuery<'a>> {
    queries
        .iter()
        .map(|q| BatchQuery {
            query: q,
            rds: ms.rds(q),
            config,
            policy: Box::new(GreedyPolicy),
        })
        .collect()
}

/// The batch executor vs per-request execution on twin flat stacks:
/// results and per-database probe counters must be exactly equal.
fn assert_flat_equivalent(
    indexes: &[InvertedIndex],
    lib: &EdLibrary,
    queries: &[Query],
    config: AproConfig,
) -> Vec<MetasearchResult> {
    let solo = flat_twin(indexes, lib);
    let batched = flat_twin(indexes, lib);

    let expected: Vec<MetasearchResult> = queries
        .iter()
        .map(|q| {
            let mut policy = GreedyPolicy;
            solo.search_with_rds(q, solo.rds(q), config, &mut policy, 5)
        })
        .collect();
    let got = batched.search_batch_with_rds(items(&batched, queries, config), 5);

    assert_eq!(got.len(), expected.len());
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(g, e, "request {i} diverged under batching");
    }
    assert_eq!(
        flat_probe_counts(&batched),
        flat_probe_counts(&solo),
        "per-database probe counters diverged under batching"
    );
    expected
}

/// Same comparison on the sharded backend: batched sharded execution vs
/// the per-request flat engine, including owning-shard accounting.
fn assert_sharded_equivalent(
    indexes: &[InvertedIndex],
    lib: &EdLibrary,
    queries: &[Query],
    config: AproConfig,
    expected: &[MetasearchResult],
    expected_counts: &[u64],
) {
    for shards in SHARD_COUNTS {
        let assignment = ShardAssignment::RoundRobin(shards);
        let sharded = ShardedMetasearcher::with_library(
            &stack(indexes),
            Arc::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            lib,
            &assignment,
        );
        let rd_source = flat_twin(indexes, lib);
        let got = sharded.search_batch_with_rds(items(&rd_source, queries, config), 5);
        assert_eq!(got.len(), expected.len());
        for (i, (g, e)) in got.iter().zip(expected).enumerate() {
            assert_eq!(g, e, "request {i} diverged batched at {shards} shards");
        }
        assert_eq!(
            sharded_probe_counts(&sharded),
            expected_counts,
            "probe counters diverged batched at {shards} shards"
        );
    }
}

/// Batches covering every overlap shape over terms 0..4.
fn overlap_batches() -> Vec<Vec<Query>> {
    let a = Query::new([t(0), t(1)]);
    let b = Query::new([t(1), t(3)]);
    let c = Query::new([t(0), t(2)]);
    let d = Query::new([t(2), t(3)]);
    vec![
        // Identical duplicates: hot-key case, maximal sharing.
        vec![a.clone(), a.clone(), a.clone()],
        // Disjoint-ish mix plus duplicates.
        vec![a.clone(), b.clone(), a.clone(), c.clone()],
        // Partial overlap chain a–b–d (shared terms 1 and 3).
        vec![a.clone(), b.clone(), d.clone()],
        // Singleton batch: must equal the solo path exactly.
        vec![b.clone()],
        // Everything at once, shuffled order with repeats.
        vec![d, c, a.clone(), b, a],
    ]
}

#[test]
fn fixed_overlap_shapes_are_bit_identical() {
    let specs: Vec<(u8, u8)> = (0u8..5)
        .map(|i| (41u8.wrapping_mul(i + 1), 13u8.wrapping_mul(i)))
        .collect();
    let indexes = build_indexes(&specs);
    let lib = library(&stack(&indexes));
    for batch in overlap_batches() {
        for (k, threshold) in [(1, 0.95), (2, 0.9)] {
            let config = apro_config(k, threshold);
            let solo = flat_twin(&indexes, &lib);
            let expected = assert_flat_equivalent(&indexes, &lib, &batch, config);
            for q in &batch {
                let mut policy = GreedyPolicy;
                solo.search_with_rds(q, solo.rds(q), config, &mut policy, 5);
            }
            assert_sharded_equivalent(
                &indexes,
                &lib,
                &batch,
                config,
                &expected,
                &flat_probe_counts(&solo),
            );
        }
    }
}

#[test]
fn empty_batch_returns_empty() {
    let indexes = build_indexes(&[(10, 3), (20, 5)]);
    let lib = library(&stack(&indexes));
    let ms = flat_twin(&indexes, &lib);
    assert!(ms.search_batch_with_rds(Vec::new(), 5).is_empty());
    assert_eq!(flat_probe_counts(&ms), vec![0, 0]);
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(10))]

    /// Random fleets × random batches (sizes 1..7, queries drawn from a
    /// small pool so duplicates and partial overlaps occur naturally):
    /// the batch executor replays per-request execution bit-for-bit on
    /// flat and sharded backends.
    #[test]
    fn random_batches_are_bit_identical(
        specs in proptest::collection::vec((0u8..=255, 0u8..=255), 2..7),
        picks in proptest::collection::vec(0usize..6, 1..7),
        k in 1usize..3,
    ) {
        let pool = [
            Query::new([t(0), t(1)]),
            Query::new([t(1), t(3)]),
            Query::new([t(0), t(2)]),
            Query::new([t(2), t(3)]),
            Query::new([t(3)]),
            Query::new([t(0), t(1), t(2)]),
        ];
        let indexes = build_indexes(&specs);
        let lib = library(&stack(&indexes));
        let batch: Vec<Query> = picks.iter().map(|&p| pool[p].clone()).collect();
        let config = apro_config(k.min(indexes.len()), 0.9);

        let expected = assert_flat_equivalent(&indexes, &lib, &batch, config);
        let solo = flat_twin(&indexes, &lib);
        for q in &batch {
            let mut policy = GreedyPolicy;
            solo.search_with_rds(q, solo.rds(q), config, &mut policy, 5);
        }
        assert_sharded_equivalent(
            &indexes,
            &lib,
            &batch,
            config,
            &expected,
            &flat_probe_counts(&solo),
        );
    }
}
