//! Cross-topology equivalence: the sharded metasearcher is
//! indistinguishable from the unsharded engine — bit-for-bit.
//!
//! The suite builds *twin stacks* (two independent database fleets from
//! identical deterministic inputs, so probe counters and injection RNGs
//! never cross-contaminate), partitions one of them across
//! shards ∈ {1, 2, 3, 8} under random and adversarial assignments, and
//! asserts:
//!
//! * **RD vectors** replay bit-identically (scatter → gather equals the
//!   flat derivation);
//! * **selections and probe sequences** replay exactly — the whole
//!   [`AproOutcome`](mp_core::AproOutcome) (selected order, certainty
//!   bits, per-probe trace, satisfied flag) compares equal, as does the
//!   fused [`MetasearchResult`](mp_core::MetasearchResult);
//! * **probe accounting** lands on the owning shard and sums to the
//!   flat twin's per-database counters;
//! * **`ProbeBudget`s** (attempts / retries / failures / outages under
//!   failure injection) stay exactly equal per database — topology is
//!   invisible even to the injection layer.

use std::sync::Arc;

use mp_core::probing::GreedyPolicy;
use mp_core::{
    AproConfig, CoreConfig, CorrectnessMetric, EdLibrary, IndependenceEstimator, Metasearcher,
    RelevancyDef, ShardAssignment, ShardedMetasearcher,
};
use mp_hidden::{ContentSummary, HiddenWebDatabase, Mediator, SimulatedHiddenDb, UnreliableDb};
use mp_index::{Document, IndexBuilder, InvertedIndex};
use mp_text::TermId;
use mp_workload::Query;
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn t(i: u32) -> TermId {
    TermId(i)
}

/// Deterministic per-database corpora from generated `(docs, pattern)`
/// specs: varied sizes and term correlations over terms 0..4 so
/// estimates err differently per database and probing does real work.
fn build_indexes(specs: &[(u8, u8)]) -> Vec<InvertedIndex> {
    specs
        .iter()
        .enumerate()
        .map(|(d, &(docs, pat))| {
            let mut b = IndexBuilder::new();
            let n_docs = 4 + u32::from(docs) % 40;
            for i in 0..n_docs {
                let mut doc = Document::new();
                if i % (2 + u32::from(pat) % 3) == 0 {
                    doc.add_term(t(0), 1);
                }
                if (i + d as u32).is_multiple_of(3) {
                    doc.add_term(t(1), 1);
                }
                if pat % 2 == 0 && i % 2 == 0 {
                    doc.add_term(t(2), 1);
                }
                doc.add_term(t(3), 1);
                b.add(doc);
            }
            b.build()
        })
        .collect()
}

/// One independent stack over the corpora (fresh databases, fresh
/// probe counters; summaries are cooperative so twins agree exactly).
fn stack(indexes: &[InvertedIndex]) -> Mediator {
    let dbs: Vec<Arc<dyn HiddenWebDatabase>> = indexes
        .iter()
        .enumerate()
        .map(|(i, ix)| {
            Arc::new(SimulatedHiddenDb::new(format!("db-{i}"), ix.clone()))
                as Arc<dyn HiddenWebDatabase>
        })
        .collect();
    let summaries = indexes.iter().map(ContentSummary::cooperative).collect();
    Mediator::new(dbs, summaries)
}

fn train_queries() -> Vec<Query> {
    let mut qs = Vec::new();
    for _ in 0..3 {
        qs.push(Query::new([t(0), t(1)]));
        qs.push(Query::new([t(0), t(3)]));
        qs.push(Query::new([t(1), t(2)]));
        qs.push(Query::new([t(2), t(3)]));
    }
    qs
}

fn test_queries() -> Vec<Query> {
    vec![
        Query::new([t(0), t(1)]),
        Query::new([t(1), t(3)]),
        Query::new([t(0), t(2)]),
    ]
}

fn library(mediator: &Mediator) -> EdLibrary {
    let config = CoreConfig::default().with_threshold(10.0);
    let lib = EdLibrary::train(
        mediator,
        &IndependenceEstimator,
        RelevancyDef::DocFrequency,
        &train_queries(),
        &config,
    );
    mediator.reset_probes();
    lib
}

fn flat_twin(indexes: &[InvertedIndex], lib: &EdLibrary) -> Metasearcher {
    Metasearcher::with_library(
        stack(indexes),
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        lib.clone(),
    )
}

fn sharded_twin(
    indexes: &[InvertedIndex],
    lib: &EdLibrary,
    assignment: &ShardAssignment,
) -> ShardedMetasearcher {
    ShardedMetasearcher::with_library(
        &stack(indexes),
        Arc::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        lib,
        assignment,
    )
}

/// Per-database probe counters of the sharded twin, reassembled into
/// global index order through the plan (owning-shard accounting).
fn sharded_probe_counts(sharded: &ShardedMetasearcher) -> Vec<u64> {
    (0..sharded.n_databases())
        .map(|g| {
            let shard = &sharded.shards()[sharded.plan().shard_of(g)];
            shard
                .mediator()
                .expect("owning shard is non-empty")
                .db(sharded.plan().local_of(g))
                .probe_count()
        })
        .collect()
}

fn flat_probe_counts(ms: &Metasearcher) -> Vec<u64> {
    (0..ms.mediator().len())
        .map(|i| ms.mediator().db(i).probe_count())
        .collect()
}

/// The full cross-topology comparison for one fleet and one assignment.
fn assert_equivalent(
    indexes: &[InvertedIndex],
    lib: &EdLibrary,
    assignment: &ShardAssignment,
    config: &AproConfig,
) {
    let ms = flat_twin(indexes, lib);
    let sharded = sharded_twin(indexes, lib, assignment);
    for q in test_queries() {
        // RD vectors: scatter → gather equals the flat derivation.
        assert_eq!(
            sharded.rds(&q),
            ms.rds(&q),
            "RDs diverged under {assignment:?}"
        );

        // Full search: selection order, certainty bits, probe trace,
        // fused hits — all bit-identical.
        let mut p_flat = GreedyPolicy;
        let mut p_shard = GreedyPolicy;
        let a = ms.search(&q, *config, &mut p_flat, 5);
        let b = sharded.search(&q, *config, &mut p_shard, 5);
        assert_eq!(a, b, "search diverged under {assignment:?} for {q:?}");
    }
    // Probe accounting: identical per database, and the sharded side's
    // per-shard totals are exactly the owning shards' shares.
    let flat_counts = flat_probe_counts(&ms);
    let sharded_counts = sharded_probe_counts(&sharded);
    assert_eq!(sharded_counts, flat_counts, "probe counters diverged");
    let mut per_shard = vec![0u64; sharded.plan().n_shards()];
    for (g, &c) in sharded_counts.iter().enumerate() {
        per_shard[sharded.plan().shard_of(g)] += c;
    }
    assert_eq!(sharded.shard_probes(), per_shard);
    assert_eq!(
        sharded.total_probes(),
        ms.mediator().total_probes(),
        "fleet-wide probe totals diverged"
    );
}

fn apro_config(k: usize, threshold: f64, metric: CorrectnessMetric) -> AproConfig {
    AproConfig {
        k,
        threshold,
        metric,
        max_probes: None,
    }
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(12))]

    /// Random fleets × random partitions × shards ∈ {1,2,3,8}: the
    /// sharded metasearcher replays the unsharded engine bit-for-bit.
    #[test]
    fn random_partitions_are_bit_identical(
        specs in proptest::collection::vec((0u8..=255, 0u8..=255), 2..10),
        owners in proptest::collection::vec(0usize..64, 10),
        mode in 0usize..3,
        k in 1usize..3,
    ) {
        let indexes = build_indexes(&specs);
        let lib = library(&stack(&indexes));
        let k = k.min(indexes.len());
        let config = apro_config(k, 0.9, CorrectnessMetric::Partial);
        for shards in SHARD_COUNTS {
            let assignment = match mode {
                0 => ShardAssignment::RoundRobin(shards),
                1 => ShardAssignment::ByNameFnv(shards),
                _ => ShardAssignment::Explicit {
                    shards,
                    owner: (0..indexes.len()).map(|i| owners[i] % shards).collect(),
                },
            };
            assert_equivalent(&indexes, &lib, &assignment, &config);
        }
    }

    /// Failure injection is topology-blind: flaky twins (counter-keyed
    /// outage/noise injection with retries) keep exactly equal
    /// per-database `ProbeBudget`s across every shard count.
    #[test]
    fn probe_budgets_replay_under_injection(
        specs in proptest::collection::vec((0u8..=255, 0u8..=255), 2..6),
        shards_ix in 0usize..4,
    ) {
        let indexes = build_indexes(&specs);
        let lib = library(&stack(&indexes));
        let shards = SHARD_COUNTS[shards_ix];
        let config = apro_config(1, 0.95, CorrectnessMetric::Absolute);

        // Two independent flaky stacks with identical injection seeds.
        let flaky_stack = || -> (Vec<Arc<UnreliableDb>>, Mediator) {
            let handles: Vec<Arc<UnreliableDb>> = indexes
                .iter()
                .enumerate()
                .map(|(i, ix)| {
                    let base: Arc<dyn HiddenWebDatabase> =
                        Arc::new(SimulatedHiddenDb::new(format!("db-{i}"), ix.clone()));
                    Arc::new(
                        UnreliableDb::new(base, 0.3, 0.2, 0.2, 1_000 + i as u64)
                            .with_retries(2),
                    )
                })
                .collect();
            let dbs: Vec<Arc<dyn HiddenWebDatabase>> = handles
                .iter()
                .map(|h| Arc::clone(h) as Arc<dyn HiddenWebDatabase>)
                .collect();
            let summaries = indexes.iter().map(ContentSummary::cooperative).collect();
            (handles, Mediator::new(dbs, summaries))
        };

        let (flat_handles, flat_med) = flaky_stack();
        let (shard_handles, shard_med) = flaky_stack();
        let ms = Metasearcher::with_library(
            flat_med,
            Box::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            lib.clone(),
        );
        let sharded = ShardedMetasearcher::with_library(
            &shard_med,
            Arc::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            &lib,
            &ShardAssignment::RoundRobin(shards),
        );
        for q in test_queries() {
            let mut p_flat = GreedyPolicy;
            let mut p_shard = GreedyPolicy;
            let a = ms.select_adaptive(&q, config, &mut p_flat);
            let b = sharded.select_adaptive(&q, config, &mut p_shard);
            prop_assert_eq!(a, b, "outcome diverged at {} shards", shards);
        }
        for (i, (f, s)) in flat_handles.iter().zip(&shard_handles).enumerate() {
            prop_assert_eq!(
                f.budget(),
                s.budget(),
                "ProbeBudget diverged on db {} at {} shards",
                i,
                shards
            );
        }
    }
}

/// Adversarial partitions at fixed fleets: empty shards, one giant
/// shard plus singletons, and the all-singleton topology.
#[test]
fn adversarial_partitions_are_bit_identical() {
    let specs: Vec<(u8, u8)> = (0u8..7)
        .map(|i| (37u8.wrapping_mul(i + 1), 11u8.wrapping_mul(i)))
        .collect();
    let indexes = build_indexes(&specs);
    let lib = library(&stack(&indexes));
    let n = indexes.len();

    let adversarial = [
        // All databases on shard 0; shards 1..7 empty.
        ShardAssignment::Explicit {
            shards: 8,
            owner: vec![0; n],
        },
        // One giant shard plus two singletons, with an empty shard too.
        ShardAssignment::Explicit {
            shards: 4,
            owner: vec![1, 1, 1, 1, 1, 0, 3],
        },
        // All-singleton: every database its own shard.
        ShardAssignment::Explicit {
            shards: n,
            owner: (0..n).collect(),
        },
        // More shards than databases (some necessarily empty).
        ShardAssignment::RoundRobin(3 * n),
    ];
    for assignment in &adversarial {
        for (k, threshold, metric) in [
            (1, 0.95, CorrectnessMetric::Absolute),
            (2, 0.9, CorrectnessMetric::Partial),
            (3, 1.0, CorrectnessMetric::Partial),
        ] {
            assert_equivalent(
                &indexes,
                &lib,
                assignment,
                &apro_config(k, threshold, metric),
            );
        }
    }
}

/// Shard-local training equals slicing a flat-trained library, fleet-
/// and assignment-independent — so deployments can train where the
/// data lives without a merge step.
#[test]
fn shard_local_training_matches_flat_training() {
    let specs: Vec<(u8, u8)> = (0u8..6)
        .map(|i| (29u8.wrapping_mul(i + 2), 7u8.wrapping_mul(i)))
        .collect();
    let indexes = build_indexes(&specs);
    let flat_lib = library(&stack(&indexes));
    for shards in SHARD_COUNTS {
        let assignment = ShardAssignment::ByNameFnv(shards);
        let sharded = ShardedMetasearcher::train(
            &stack(&indexes),
            Arc::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            &train_queries(),
            CoreConfig::default().with_threshold(10.0),
            &assignment,
        );
        for (s, shard) in sharded.shards().iter().enumerate() {
            assert_eq!(
                shard.library(),
                &flat_lib.subset(sharded.plan().members(s)),
                "shard {s}/{shards} trained a different library slice"
            );
        }
        assert_eq!(sharded.total_probes(), 0, "training must reset probes");
    }
}
