//! Deterministic pseudo-word generation.
//!
//! The synthetic vocabulary needs term strings that (a) survive the text
//! pipeline unchanged — lowercase ASCII letters only, so tokenization is
//! an exact round trip — and (b) are pairwise distinct. Words are built
//! from consonant-vowel syllables seeded by the term index, giving
//! pronounceable, stable names like `kuvasora`.

/// Consonants used for syllable construction.
const CONSONANTS: &[u8] = b"bdfgklmnprstvz";
/// Vowels used for syllable construction.
const VOWELS: &[u8] = b"aeiou";

/// Generates the `i`-th pseudo-word.
///
/// Deterministic and injective: every distinct `i` yields a distinct
/// word because the trailing syllables encode `i` in mixed radix, and a
/// disambiguating suffix is appended for indices beyond the radix range.
pub fn pseudo_word(i: u64) -> String {
    let mut word = String::new();
    let mut n = i;
    // Always emit at least three syllables so words are >= 6 chars and
    // never collide with real stopwords or each other's prefixes.
    for _ in 0..3 {
        let c = CONSONANTS[(n % CONSONANTS.len() as u64) as usize];
        n /= CONSONANTS.len() as u64;
        let v = VOWELS[(n % VOWELS.len() as u64) as usize];
        n /= VOWELS.len() as u64;
        word.push(c as char);
        word.push(v as char);
    }
    if n > 0 {
        // Mixed-radix overflow: encode the remainder in base-26 letters.
        while n > 0 {
            let digit = u8::try_from(n % 26).expect("a mod-26 remainder always fits in u8");
            word.push((b'a' + digit) as char);
            n /= 26;
        }
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_lowercase_ascii() {
        for i in 0..1000 {
            let w = pseudo_word(i);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(w.len() >= 6);
        }
    }

    #[test]
    fn words_are_injective() {
        let mut seen = HashSet::new();
        for i in 0..200_000u64 {
            assert!(seen.insert(pseudo_word(i)), "collision at {i}");
        }
    }

    #[test]
    fn words_survive_tokenization() {
        for i in [0u64, 17, 9999, 123_456] {
            let w = pseudo_word(i);
            assert_eq!(mp_text::tokenize(&w), vec![w.clone()]);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(pseudo_word(42), pseudo_word(42));
    }
}
