//! Document generation from the topic model.

use crate::topic::{TopicId, TopicModel};
use mp_index::Document;
use mp_stats::AliasSampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Knobs for per-document generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocGenConfig {
    /// Mean of `ln(document length)`.
    pub len_log_mean: f64,
    /// Std-dev of `ln(document length)`.
    pub len_log_std: f64,
    /// Hard floor on document length (terms).
    pub min_len: u32,
    /// Hard ceiling on document length (terms).
    pub max_len: u32,
    /// Probability that any given term comes from the background pool.
    pub background_prob: f64,
    /// Probability that a document carries a secondary topic.
    pub second_topic_prob: f64,
    /// Given a secondary topic, probability a topical term draws from it
    /// instead of the primary topic.
    pub secondary_draw_prob: f64,
    /// Subtopic window width: each document's topical terms are drawn
    /// from a random contiguous slice of this many terms within its
    /// topic's vocabulary (0 disables windowing and samples the whole
    /// topic). Windowing creates *within-database* term correlation —
    /// two terms of one subtopic co-occur far above the product of
    /// their marginals even inside a topically focused database, which
    /// is exactly the structure that breaks the independence estimator
    /// on real corpora ("breast" and "cancer" cluster inside PubMed).
    pub subtopic_window: usize,
}

impl Default for DocGenConfig {
    fn default() -> Self {
        Self {
            // exp(4.0) ≈ 55 terms on average — short article / abstract.
            len_log_mean: 4.0,
            len_log_std: 0.5,
            min_len: 10,
            max_len: 500,
            background_prob: 0.35,
            second_topic_prob: 0.30,
            secondary_draw_prob: 0.35,
            subtopic_window: 40,
        }
    }
}

/// Generates documents whose topical terms are *correlated*: a document
/// about topic A is packed with topic-A terms, so any two topic-A terms
/// co-occur far above the product of their marginal frequencies. This is
/// the mechanism that makes the independence estimator's errors large
/// and database-dependent, reproducing the paper's motivating
/// observation (Section 2.3).
#[derive(Debug)]
pub struct DocumentGenerator<'m> {
    model: &'m TopicModel,
    config: DocGenConfig,
    /// Mixture over topics for the database being generated.
    mixture: AliasSampler,
    /// Topic ids corresponding to mixture categories.
    mixture_topics: Vec<TopicId>,
    /// Zipf over window offsets when subtopic windowing is enabled.
    window_zipf: Option<mp_stats::Zipf>,
}

impl<'m> DocumentGenerator<'m> {
    /// Creates a generator for a database with the given topic mixture.
    ///
    /// `mixture` pairs each topic with a non-negative weight; weights are
    /// normalized internally.
    ///
    /// # Panics
    /// Panics if the mixture is empty, references an unknown topic, or
    /// has all-zero weights.
    pub fn new(model: &'m TopicModel, mixture: &[(TopicId, f64)], config: DocGenConfig) -> Self {
        assert!(!mixture.is_empty(), "topic mixture must be non-empty");
        for &(t, _) in mixture {
            assert!(t.index() < model.n_topics(), "unknown topic {t:?}");
        }
        let weights: Vec<f64> = mixture.iter().map(|&(_, w)| w).collect();
        let window_zipf =
            (config.subtopic_window > 0).then(|| mp_stats::Zipf::new(config.subtopic_window, 1.0));
        Self {
            model,
            config,
            mixture: AliasSampler::new(&weights),
            mixture_topics: mixture.iter().map(|&(t, _)| t).collect(),
            window_zipf,
        }
    }

    /// The document-generation configuration.
    pub fn config(&self) -> &DocGenConfig {
        &self.config
    }

    /// Samples a document length: clamped log-normal via Box–Muller.
    fn sample_len<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        // Box–Muller: two uniforms → one standard normal.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let len = (self.config.len_log_mean + self.config.len_log_std * z).exp();
        // Checked rounding (saturating on the log-normal's unbounded
        // upper tail), then the configured clamp.
        mp_stats::float::round_u64(len)
            .and_then(|l| u32::try_from(l).ok())
            .unwrap_or(u32::MAX)
            .clamp(self.config.min_len, self.config.max_len)
    }

    /// Generates one document.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Document {
        let primary = self.mixture_topics[self.mixture.sample(rng)];
        let secondary =
            if self.model.n_topics() > 1 && rng.gen::<f64>() < self.config.second_topic_prob {
                // Any other topic, uniformly: news-style cross-topic content.
                let mut pick = rng.gen_range(0..self.model.n_topics() - 1);
                if pick >= primary.index() {
                    pick += 1;
                }
                Some(TopicId::from_index(pick))
            } else {
                None
            };

        // One subtopic window per (document, topic): the document's
        // topical vocabulary clusters around it.
        let window_start = |rng: &mut R, topic: TopicId| -> usize {
            rng.gen_range(0..self.model.topic(topic).terms().len())
        };
        let primary_start = window_start(rng, primary);
        let secondary_start = secondary.map(|s| (s, window_start(rng, s)));

        let len = self.sample_len(rng);
        let mut doc = Document::new();
        for _ in 0..len {
            let term = if rng.gen::<f64>() < self.config.background_prob {
                self.model.background().sample(rng)
            } else {
                let (topic, start) = match secondary_start {
                    Some(ss) if rng.gen::<f64>() < self.config.secondary_draw_prob => ss,
                    _ => (primary, primary_start),
                };
                match &self.window_zipf {
                    Some(z) => {
                        let terms = self.model.topic(topic).terms();
                        terms[(start + z.sample(rng)) % terms.len()]
                    }
                    None => self.model.topic(topic).sample(rng),
                }
            };
            doc.add_term(term, 1);
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicModelConfig;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashSet;

    fn model() -> TopicModel {
        TopicModel::build(TopicModelConfig {
            n_topics: 5,
            terms_per_topic: 100,
            overlap_fraction: 0.1,
            background_terms: 50,
            zipf_exponent: 1.0,
            seed: 1,
        })
    }

    #[test]
    fn lengths_respect_bounds() {
        let m = model();
        let g = DocumentGenerator::new(
            &m,
            &[(TopicId(0), 1.0)],
            DocGenConfig {
                min_len: 20,
                max_len: 60,
                ..DocGenConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let d = g.generate(&mut rng);
            assert!(d.len() >= 20 && d.len() <= 60, "len={}", d.len());
        }
    }

    #[test]
    fn single_topic_docs_stay_in_topic_vocabulary() {
        let m = model();
        let g = DocumentGenerator::new(
            &m,
            &[(TopicId(2), 1.0)],
            DocGenConfig {
                background_prob: 0.0,
                second_topic_prob: 0.0,
                ..DocGenConfig::default()
            },
        );
        let allowed: HashSet<_> = m.topic(TopicId(2)).terms().iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let d = g.generate(&mut rng);
            for (t, _) in d.terms() {
                assert!(allowed.contains(&t));
            }
        }
    }

    #[test]
    fn topical_terms_cooccur_above_independence() {
        // The core phenomenon: P(a AND b) >> P(a)·P(b) for two topic
        // terms when the database mixes several topics.
        let m = model();
        let mixture: Vec<(TopicId, f64)> = (0..5).map(|i| (TopicId(i), 1.0)).collect();
        let g = DocumentGenerator::new(&m, &mixture, DocGenConfig::default());
        let mut rng = StdRng::seed_from_u64(13);
        let docs: Vec<_> = (0..2000).map(|_| g.generate(&mut rng)).collect();

        // Mid-rank terms: popular enough to appear, rare enough that the
        // independence product is small and the topical lift is visible.
        let a = m.topic(TopicId(0)).terms()[4];
        let b = m.topic(TopicId(0)).terms()[5];
        let n = docs.len() as f64;
        let pa = docs.iter().filter(|d| d.contains(a)).count() as f64 / n;
        let pb = docs.iter().filter(|d| d.contains(b)).count() as f64 / n;
        let pab = docs
            .iter()
            .filter(|d| d.contains(a) && d.contains(b))
            .count() as f64
            / n;
        assert!(pa > 0.0 && pb > 0.0);
        assert!(
            pab > 2.0 * pa * pb,
            "joint {pab} should exceed independent product {}",
            pa * pb
        );
    }

    #[test]
    fn mixture_controls_topic_balance() {
        let m = model();
        let g = DocumentGenerator::new(
            &m,
            &[(TopicId(0), 0.9), (TopicId(1), 0.1)],
            DocGenConfig {
                background_prob: 0.0,
                second_topic_prob: 0.0,
                ..DocGenConfig::default()
            },
        );
        let t0: HashSet<_> = m.topic(TopicId(0)).terms().iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(21);
        let mut topic0_docs = 0;
        let total = 500;
        for _ in 0..total {
            let d = g.generate(&mut rng);
            // A doc drawn from topic 0 has most terms in t0.
            let in0 = d.terms().filter(|(t, _)| t0.contains(t)).count();
            if in0 * 2 > d.distinct_terms() {
                topic0_docs += 1;
            }
        }
        let frac = topic0_docs as f64 / total as f64;
        assert!(frac > 0.8, "topic-0 fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "unknown topic")]
    fn rejects_unknown_topic() {
        let m = model();
        DocumentGenerator::new(&m, &[(TopicId(99), 1.0)], DocGenConfig::default());
    }

    #[test]
    fn deterministic_given_seed() {
        let m = model();
        let g = DocumentGenerator::new(&m, &[(TopicId(1), 1.0)], DocGenConfig::default());
        let d1 = g.generate(&mut StdRng::seed_from_u64(77));
        let d2 = g.generate(&mut StdRng::seed_from_u64(77));
        assert_eq!(d1, d2);
    }
}
