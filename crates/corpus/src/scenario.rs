//! Packaged evaluation scenarios mirroring the paper's two testbeds.
//!
//! * [`ScenarioKind::Newsgroup`] — 20 topic-focused databases, the
//!   stand-in for the 20 UCLA newsgroups used by the sampling-size study
//!   (paper Section 4.2, Figures 7/8).
//! * [`ScenarioKind::Health`] — 20 heterogeneous databases: 13 topical
//!   specialists, 4 broad "science" generalists, and 3 shallow "news"
//!   databases — the stand-in for the CompletePlanet health testbed of
//!   the main evaluation (paper Section 6.1, Figure 14).
//!
//! Database sizes are spread log-uniformly, echoing the paper's wide
//! size ranges (2.8k–80k newsgroup articles; 4k–630k health documents),
//! scaled by [`ScenarioConfig::scale`] so tests stay fast while the
//! benchmark harness can run closer to paper scale.

use crate::database_gen::{generate_database, DatabaseSpec};
use crate::document_gen::DocGenConfig;
use crate::topic::{TopicId, TopicModel, TopicModelConfig};
use mp_index::InvertedIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which testbed to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// 20 single-topic databases (sampling-size study).
    Newsgroup,
    /// 20 mixed databases: specialists + generalists + news (main eval).
    Health,
}

/// Scenario configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Which testbed shape to build.
    pub kind: ScenarioKind,
    /// Master seed; every derived database seed is a pure function of it.
    pub seed: u64,
    /// Multiplier on database sizes. `1.0` ≈ 600–5000 docs per database
    /// (laptop-scale); raise for paper-scale corpora.
    pub scale: f64,
    /// Number of databases (paper: 20).
    pub n_databases: usize,
    /// Topic model shape.
    pub topics: TopicModelConfig,
}

impl ScenarioConfig {
    /// The default configuration for a testbed kind.
    pub fn new(kind: ScenarioKind, seed: u64) -> Self {
        Self {
            kind,
            seed,
            scale: 1.0,
            n_databases: 20,
            topics: TopicModelConfig {
                seed,
                ..TopicModelConfig::default()
            },
        }
    }

    /// A deliberately tiny configuration for unit tests.
    pub fn tiny(kind: ScenarioKind, seed: u64) -> Self {
        Self {
            kind,
            seed,
            scale: 0.05,
            n_databases: 5,
            topics: TopicModelConfig {
                n_topics: 6,
                terms_per_topic: 60,
                background_terms: 60,
                seed,
                ..TopicModelConfig::default()
            },
        }
    }
}

/// A fully generated testbed: topic model + named, indexed databases.
#[derive(Debug)]
pub struct Scenario {
    config: ScenarioConfig,
    model: TopicModel,
    specs: Vec<DatabaseSpec>,
    indexes: Vec<InvertedIndex>,
}

impl Scenario {
    /// Generates the scenario. Deterministic in `config`.
    pub fn generate(config: ScenarioConfig) -> Self {
        let model = TopicModel::build(config.topics.clone());
        let specs = match config.kind {
            ScenarioKind::Newsgroup => newsgroup_specs(&config, &model),
            ScenarioKind::Health => health_specs(&config, &model),
        };
        let indexes = specs.iter().map(|s| generate_database(&model, s)).collect();
        Self {
            config,
            model,
            specs,
            indexes,
        }
    }

    /// The configuration this scenario was generated from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The underlying topic model (shared vocabulary lives here).
    pub fn model(&self) -> &TopicModel {
        &self.model
    }

    /// Database specifications, aligned with [`Scenario::indexes`].
    pub fn specs(&self) -> &[DatabaseSpec] {
        &self.specs
    }

    /// The built inverted indexes, one per database.
    pub fn indexes(&self) -> &[InvertedIndex] {
        &self.indexes
    }

    /// Number of databases.
    pub fn n_databases(&self) -> usize {
        self.indexes.len()
    }

    /// Consumes the scenario, yielding `(spec, index)` pairs.
    pub fn into_parts(self) -> (TopicModel, Vec<(DatabaseSpec, InvertedIndex)>) {
        (
            self.model,
            self.specs.into_iter().zip(self.indexes).collect(),
        )
    }
}

/// Log-uniform size in `[lo, hi]`, scaled and floored at 50 documents.
fn logu_size<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64, scale: f64) -> usize {
    let x = rng.gen::<f64>();
    let size = (lo.ln() + x * (hi.ln() - lo.ln())).exp() * scale;
    let rounded = mp_stats::float::round_u64(size).unwrap_or(50);
    usize::try_from(rounded).unwrap_or(usize::MAX).max(50)
}

fn newsgroup_specs(config: &ScenarioConfig, model: &TopicModel) -> Vec<DatabaseSpec> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let n_topics = model.n_topics();
    (0..config.n_databases)
        .map(|i| {
            let topic = TopicId::from_index(i % n_topics);
            // Paper newsgroups: 2.8k–80k articles; scaled to 600–5000 at
            // scale 1.0 for laptop runtimes (documented substitution).
            let size = logu_size(&mut rng, 600.0, 5000.0, config.scale);
            DatabaseSpec::specialist(
                format!("group.{i:02}.t{}", topic.0),
                size,
                topic,
                0.92,
                n_topics,
                config.seed.wrapping_add(1000 + i as u64),
            )
        })
        .collect()
}

/// Health databases all cover the *same domain* (the topic set plays
/// the role of health subtopics — oncology, cardiology, nutrition, …)
/// but differ in two db-stable ways the independence estimator cannot
/// see:
///
/// * **emphasis** — specialists weight a couple of subtopics heavily,
///   generalists and news sites spread flat;
/// * **internal correlation** — specialists are tightly clustered
///   (small subtopic windows → conjunctive queries match far more
///   documents than the df product predicts → consistent
///   *under*estimation), while news-style content is loosely clustered
///   (wide windows, more background vocabulary → the independence
///   assumption roughly holds).
///
/// This reproduces the paper's Figure 3(b): estimation errors that are
/// large, systematic, and *different per database* — the signal the
/// probabilistic relevancy model learns.
fn health_specs(config: &ScenarioConfig, model: &TopicModel) -> Vec<DatabaseSpec> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(2));
    let n_topics = model.n_topics();
    let n = config.n_databases;
    // Composition mirrors the paper's 13 + 4 + 3 at n = 20 and scales
    // proportionally otherwise.
    let n_news = (n * 3 / 20).max(1);
    let n_general = (n * 4 / 20).max(1);
    let n_special = n - n_news - n_general;

    let mut specs = Vec::with_capacity(n);
    for i in 0..n_special {
        let main = i % n_topics;
        let second = (i + 1 + i / n_topics) % n_topics;
        // Full-domain coverage with heavy emphasis on two subtopics.
        let mixture: Vec<(TopicId, f64)> = (0..n_topics)
            .map(|t| {
                let w = if t == main {
                    8.0 + rng.gen::<f64>() * 6.0
                } else if t == second {
                    2.0 + rng.gen::<f64>() * 2.0
                } else {
                    0.6 + rng.gen::<f64>() * 0.8
                };
                (TopicId::from_index(t), w)
            })
            .collect();
        // Paper health DBs: 4k–630k docs; scaled to 500–8000 at scale 1.
        let size = logu_size(&mut rng, 500.0, 8000.0, config.scale);
        let mut spec = DatabaseSpec {
            name: format!("med.{i:02}.t{main}"),
            size,
            mixture,
            seed: config.seed.wrapping_add(2000 + i as u64),
            doc_config: DocGenConfig::default(),
        };
        // No hard subtopic windows: within-topic correlation comes
        // from the depth mix below, which produces a *uniform*
        // multiplicative lift (1 + CV²) the RD model can learn; hard
        // windows would add per-query-pair noise on top of it.
        spec.doc_config.subtopic_window = 0;
        spec.doc_config.second_topic_prob = 0.2;
        // Deep/shallow document mix (full texts vs abstracts): heavy
        // per-document length variance creates an *estimate-independent*
        // multiplicative co-occurrence lift ≈ 1 + CV² — the stable
        // per-database underestimation factor the RD model learns.
        spec.doc_config.len_log_mean = 3.0; // short abstracts ...
        spec.doc_config.len_log_std = 1.5 + (i % 3) as f64 * 0.15; // ... to deep monographs
        spec.doc_config.min_len = 5;
        spec.doc_config.max_len = 4_000;
        specs.push(spec);
    }
    for i in 0..n_general {
        let size = logu_size(&mut rng, 1500.0, 9000.0, config.scale);
        let mut spec = DatabaseSpec::generalist(
            format!("sci.broad.{i:02}"),
            size,
            n_topics,
            config.seed.wrapping_add(3000 + i as u64),
        );
        // Loose clustering and a moderate depth mix.
        spec.doc_config.subtopic_window = 0;
        spec.doc_config.len_log_mean = 3.5;
        spec.doc_config.len_log_std = 0.8;
        spec.doc_config.max_len = 1_200;
        specs.push(spec);
    }
    for i in 0..n_news {
        // News sites: moderate size, flat mixture, shorter docs, more
        // background vocabulary, and *loose* clustering — the
        // independence assumption roughly holds here.
        let size = logu_size(&mut rng, 800.0, 3000.0, config.scale);
        let mut spec = DatabaseSpec::generalist(
            format!("news.daily.{i:02}"),
            size,
            n_topics,
            config.seed.wrapping_add(4000 + i as u64),
        );
        spec.doc_config.len_log_mean = 3.4; // ≈ 30 terms
        spec.doc_config.len_log_std = 0.2; // uniform article lengths
        spec.doc_config.background_prob = 0.55;
        spec.doc_config.second_topic_prob = 0.5;
        spec.doc_config.subtopic_window = 0; // unclustered
        specs.push(spec);
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_newsgroup_scenario_builds() {
        let s = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Newsgroup, 3));
        assert_eq!(s.n_databases(), 5);
        for idx in s.indexes() {
            assert!(idx.doc_count() >= 50);
        }
    }

    #[test]
    fn tiny_health_scenario_has_three_database_classes() {
        let s = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 3));
        let names: Vec<&str> = s.specs().iter().map(|s| s.name.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("med.")));
        assert!(names.iter().any(|n| n.starts_with("sci.broad.")));
        assert!(names.iter().any(|n| n.starts_with("news.daily.")));
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 11));
        let b = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 11));
        assert_eq!(a.specs(), b.specs());
        for (ia, ib) in a.indexes().iter().zip(b.indexes()) {
            assert_eq!(ia.doc_count(), ib.doc_count());
            assert_eq!(ia.distinct_terms(), ib.distinct_terms());
        }
    }

    #[test]
    fn seeds_change_content() {
        let a = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 1));
        let b = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 2));
        let sizes_a: Vec<u32> = a.indexes().iter().map(|i| i.doc_count()).collect();
        let sizes_b: Vec<u32> = b.indexes().iter().map(|i| i.doc_count()).collect();
        assert_ne!(sizes_a, sizes_b);
    }

    #[test]
    fn database_sizes_vary() {
        let s = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 7));
        let sizes: Vec<u32> = s.indexes().iter().map(|i| i.doc_count()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > min, "sizes should be heterogeneous: {sizes:?}");
    }

    #[test]
    fn full_default_config_shape() {
        let c = ScenarioConfig::new(ScenarioKind::Health, 0);
        assert_eq!(c.n_databases, 20);
        assert_eq!(c.topics.n_topics, 25);
    }
}
