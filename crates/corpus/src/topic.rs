//! Topic model: Zipf-weighted topic vocabularies with controlled overlap.

use crate::words::pseudo_word;
use mp_stats::Zipf;
use mp_text::{TermId, Vocabulary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Identifier of a topic within a [`TopicModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TopicId(pub u32);

impl TopicId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a usize index with an explicit range check
    /// (topic counts are tiny; overflowing `u32` means a caller bug).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("topic counts are tiny; indices always fit u32"))
    }
}

/// Configuration of the topic model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicModelConfig {
    /// Number of topics.
    pub n_topics: usize,
    /// Core (non-shared) terms per topic.
    pub terms_per_topic: usize,
    /// Fraction of each topic's vocabulary borrowed from the *next*
    /// topic's core terms, creating cross-topic term sharing (so queries
    /// can straddle topics and databases overlap lexically).
    pub overlap_fraction: f64,
    /// Size of the background pool every document draws from.
    pub background_terms: usize,
    /// Zipf exponent for within-topic term popularity (~1.0 is natural
    /// language).
    pub zipf_exponent: f64,
    /// Seed for topic construction.
    pub seed: u64,
}

impl Default for TopicModelConfig {
    fn default() -> Self {
        Self {
            n_topics: 25,
            terms_per_topic: 100,
            overlap_fraction: 0.15,
            background_terms: 400,
            zipf_exponent: 1.0,
            seed: 0,
        }
    }
}

/// One topic: an ordered term list (most popular first) with a Zipf
/// sampler over it.
#[derive(Debug, Clone)]
pub struct Topic {
    /// Terms in popularity order (rank 0 = most frequent).
    terms: Vec<TermId>,
    zipf: Zipf,
}

impl Topic {
    /// Terms in popularity (rank) order.
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Samples one term.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TermId {
        self.terms[self.zipf.sample(rng)]
    }

    /// The probability with which [`Topic::sample`] yields the term at
    /// `rank`.
    pub fn rank_prob(&self, rank: usize) -> f64 {
        self.zipf.prob(rank)
    }
}

/// The full topic model: topics + background pool over a shared
/// vocabulary.
#[derive(Debug, Clone)]
pub struct TopicModel {
    config: TopicModelConfig,
    vocab: Vocabulary,
    topics: Vec<Topic>,
    background: Topic,
}

impl TopicModel {
    /// Builds a topic model from the configuration. Fully deterministic
    /// in `config.seed`.
    pub fn build(config: TopicModelConfig) -> Self {
        assert!(config.n_topics >= 1, "need at least one topic");
        assert!(
            config.terms_per_topic >= 2,
            "topics need at least two terms"
        );
        assert!(
            (0.0..1.0).contains(&config.overlap_fraction),
            "overlap_fraction must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut vocab = Vocabulary::new();

        // Background pool first: ids 0..background_terms.
        let background_ids: Vec<TermId> = (0..config.background_terms as u64)
            .map(|i| vocab.intern(&pseudo_word(i)))
            .collect();

        // Core terms per topic.
        let mut core: Vec<Vec<TermId>> = Vec::with_capacity(config.n_topics);
        let mut next_word = config.background_terms as u64;
        for _ in 0..config.n_topics {
            let ids: Vec<TermId> = (0..config.terms_per_topic)
                .map(|_| {
                    let id = vocab.intern(&pseudo_word(next_word));
                    next_word += 1;
                    id
                })
                .collect();
            core.push(ids);
        }

        // Topic vocabularies: own core plus an overlap slice borrowed
        // from the next topic (ring order). Borrowed terms are spliced at
        // random ranks so shared terms are popular in both topics.
        let borrow = (config.terms_per_topic as f64 * config.overlap_fraction) as usize;
        let mut topics = Vec::with_capacity(config.n_topics);
        for t in 0..config.n_topics {
            let mut terms = core[t].clone();
            if config.n_topics > 1 {
                let neighbor = (t + 1) % config.n_topics;
                for &borrowed in core[neighbor].iter().take(borrow) {
                    let pos = rng.gen_range(0..=terms.len());
                    terms.insert(pos, borrowed);
                }
            }
            let zipf = Zipf::new(terms.len(), config.zipf_exponent);
            topics.push(Topic { terms, zipf });
        }

        let background = Topic {
            zipf: Zipf::new(background_ids.len().max(1), config.zipf_exponent),
            terms: background_ids,
        };

        Self {
            config,
            vocab,
            topics,
            background,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &TopicModelConfig {
        &self.config
    }

    /// The shared vocabulary (terms from all topics and the background).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Mutable vocabulary access (the indexing side interns queries
    /// through the same interner).
    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    /// Number of topics.
    pub fn n_topics(&self) -> usize {
        self.topics.len()
    }

    /// A topic by id.
    pub fn topic(&self, id: TopicId) -> &Topic {
        &self.topics[id.index()]
    }

    /// The background pool.
    pub fn background(&self) -> &Topic {
        &self.background
    }

    /// Iterates all topic ids.
    pub fn topic_ids(&self) -> impl Iterator<Item = TopicId> {
        (0..self.topics.len()).map(TopicId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_config() -> TopicModelConfig {
        TopicModelConfig {
            n_topics: 4,
            terms_per_topic: 50,
            overlap_fraction: 0.2,
            background_terms: 30,
            zipf_exponent: 1.0,
            seed: 7,
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = TopicModel::build(small_config());
        let b = TopicModel::build(small_config());
        for t in a.topic_ids() {
            assert_eq!(a.topic(t).terms(), b.topic(t).terms());
        }
        assert_eq!(a.vocab().len(), b.vocab().len());
    }

    #[test]
    fn topics_have_expected_sizes() {
        let m = TopicModel::build(small_config());
        assert_eq!(m.n_topics(), 4);
        // 50 core + 10 borrowed.
        for t in m.topic_ids() {
            assert_eq!(m.topic(t).terms().len(), 60);
        }
        assert_eq!(m.background().terms().len(), 30);
    }

    #[test]
    fn neighboring_topics_share_terms_distant_ones_do_not() {
        let m = TopicModel::build(small_config());
        let set =
            |t: u32| -> HashSet<TermId> { m.topic(TopicId(t)).terms().iter().copied().collect() };
        let (t0, t1, t2) = (set(0), set(1), set(2));
        assert!(!t0.is_disjoint(&t1), "ring neighbors must overlap");
        // Topic 0 borrows from 1 only; topic 2 borrows from 3 only: the
        // only possible sharing between 0 and 2 is via 1's core inside
        // both — which does not happen in ring borrowing.
        assert!(t0.is_disjoint(&t2), "non-neighbors must not overlap");
    }

    #[test]
    fn vocabulary_covers_all_topics_and_background() {
        let m = TopicModel::build(small_config());
        // 30 background + 4 * 50 core (borrowed terms are shared ids).
        assert_eq!(m.vocab().len(), 30 + 4 * 50);
    }

    #[test]
    fn sampling_is_biased_to_low_ranks() {
        let m = TopicModel::build(small_config());
        let topic = m.topic(TopicId(0));
        let mut rng = StdRng::seed_from_u64(3);
        let head: HashSet<TermId> = topic.terms().iter().take(10).copied().collect();
        let n = 5000;
        let head_hits = (0..n)
            .filter(|_| head.contains(&topic.sample(&mut rng)))
            .count();
        // With Zipf(1.0) over 60 ranks, the top-10 carry ~63% of the mass.
        assert!(head_hits as f64 / n as f64 > 0.45, "{head_hits}");
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn rejects_zero_topics() {
        TopicModel::build(TopicModelConfig {
            n_topics: 0,
            ..small_config()
        });
    }

    #[test]
    fn single_topic_model_has_no_overlap_panic() {
        let m = TopicModel::build(TopicModelConfig {
            n_topics: 1,
            ..small_config()
        });
        assert_eq!(m.topic(TopicId(0)).terms().len(), 50);
    }
}
