//! # mp-corpus — synthetic Hidden-Web corpus generator for `metaprobe`
//!
//! The paper evaluates on assets we cannot redistribute: 20 UCLA
//! newsgroups and 20 real health-related Hidden-Web databases, plus a
//! proprietary Overture query trace. This crate generates synthetic
//! equivalents that preserve the *one property everything hinges on*:
//! **term correlation**. Terms belonging to the same topic co-occur in
//! documents far more often than the term-independence assumption
//! predicts, so the independence estimator (paper Eq. 1)
//! *underestimates* the relevancy of databases that cover a query's
//! topic and *overestimates* (or trivially mis-estimates) databases that
//! do not — exactly the non-uniform error behaviour the paper's
//! probabilistic relevancy model captures (paper Section 2.3).
//!
//! The generative model:
//!
//! 1. a [`topic::TopicModel`] carves a shared vocabulary
//!    into Zipf-weighted topic vocabularies with controlled overlap plus
//!    a background pool;
//! 2. each document ([`document_gen`]) picks one primary (and sometimes
//!    one secondary) topic and mixes topic terms with background terms;
//! 3. each database ([`database_gen`]) draws documents from a
//!    [`database_gen::DatabaseSpec`] topic *mixture* —
//!    specialists, generalists, and news-style databases differ only in
//!    their mixtures;
//! 4. [`scenario`] packages the two evaluation settings as fully seeded,
//!    reproducible [`scenario::Scenario`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database_gen;
pub mod document_gen;
pub mod scenario;
pub mod topic;
pub mod words;

pub use database_gen::{generate_database, DatabaseSpec};
pub use document_gen::DocumentGenerator;
pub use scenario::{Scenario, ScenarioConfig, ScenarioKind};
pub use topic::{TopicId, TopicModel, TopicModelConfig};
