//! Database generation: a named collection drawn from a topic mixture.

use crate::document_gen::{DocGenConfig, DocumentGenerator};
use crate::topic::{TopicId, TopicModel};
use mp_index::{Document, IndexBuilder, InvertedIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Specification of one synthetic Hidden-Web database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatabaseSpec {
    /// Human-readable name (e.g. `med.oncology`, `news.daily-1`).
    pub name: String,
    /// Number of documents.
    pub size: usize,
    /// Topic mixture: `(topic, weight)`; weights normalized internally.
    pub mixture: Vec<(TopicId, f64)>,
    /// Per-database generation seed (independent of other databases).
    pub seed: u64,
    /// Document-generation knobs.
    pub doc_config: DocGenConfig,
}

impl DatabaseSpec {
    /// A specialist database: one dominant topic plus a thin spread over
    /// the rest (weight `1 − focus` split evenly).
    pub fn specialist(
        name: impl Into<String>,
        size: usize,
        topic: TopicId,
        focus: f64,
        n_topics: usize,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&focus));
        let mut mixture = vec![(topic, focus)];
        if n_topics > 1 && focus < 1.0 {
            let rest = (1.0 - focus) / (n_topics - 1) as f64;
            for i in 0..n_topics {
                if i != topic.index() {
                    mixture.push((TopicId::from_index(i), rest));
                }
            }
        }
        Self {
            name: name.into(),
            size,
            mixture,
            seed,
            doc_config: DocGenConfig::default(),
        }
    }

    /// A generalist database: uniform mixture over all topics.
    pub fn generalist(name: impl Into<String>, size: usize, n_topics: usize, seed: u64) -> Self {
        let mixture = (0..n_topics)
            .map(|i| (TopicId::from_index(i), 1.0))
            .collect();
        Self {
            name: name.into(),
            size,
            mixture,
            seed,
            doc_config: DocGenConfig::default(),
        }
    }
}

/// Generates the documents of a database per its spec.
pub fn generate_documents(model: &TopicModel, spec: &DatabaseSpec) -> Vec<Document> {
    let gen = DocumentGenerator::new(model, &spec.mixture, spec.doc_config.clone());
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.size).map(|_| gen.generate(&mut rng)).collect()
}

/// Generates a database and builds its inverted index in one step.
pub fn generate_database(model: &TopicModel, spec: &DatabaseSpec) -> InvertedIndex {
    let mut builder = IndexBuilder::new();
    for doc in generate_documents(model, spec) {
        builder.add(doc);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicModelConfig;

    fn model() -> TopicModel {
        TopicModel::build(TopicModelConfig {
            n_topics: 4,
            terms_per_topic: 80,
            overlap_fraction: 0.1,
            background_terms: 40,
            zipf_exponent: 1.0,
            seed: 2,
        })
    }

    #[test]
    fn generates_requested_size() {
        let m = model();
        let spec = DatabaseSpec::specialist("s0", 120, TopicId(0), 0.9, 4, 10);
        let idx = generate_database(&m, &spec);
        assert_eq!(idx.doc_count(), 120);
        assert!(idx.distinct_terms() > 0);
    }

    #[test]
    fn deterministic_per_spec_seed() {
        let m = model();
        let spec = DatabaseSpec::generalist("g", 50, 4, 99);
        let a = generate_documents(&m, &spec);
        let b = generate_documents(&m, &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let m = model();
        let mut s1 = DatabaseSpec::generalist("g", 50, 4, 1);
        let s2 = DatabaseSpec::generalist("g", 50, 4, 2);
        s1.seed = 1;
        let a = generate_documents(&m, &s1);
        let b = generate_documents(&m, &s2);
        assert_ne!(a, b);
    }

    #[test]
    fn specialist_mixture_sums_to_one_ish() {
        let spec = DatabaseSpec::specialist("s", 10, TopicId(1), 0.8, 4, 0);
        let total: f64 = spec.mixture.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(spec.mixture[0], (TopicId(1), 0.8));
    }

    #[test]
    fn specialist_covers_own_topic_better() {
        let m = model();
        let s0 = generate_database(
            &m,
            &DatabaseSpec::specialist("s0", 300, TopicId(0), 0.95, 4, 5),
        );
        let s2 = generate_database(
            &m,
            &DatabaseSpec::specialist("s2", 300, TopicId(2), 0.95, 4, 6),
        );
        // A conjunctive query of two popular topic-0 terms matches far
        // more documents in the topic-0 specialist.
        let q = [
            m.topic(TopicId(0)).terms()[0],
            m.topic(TopicId(0)).terms()[1],
        ];
        let hits0 = s0.count_matching(&q);
        let hits2 = s2.count_matching(&q);
        assert!(
            hits0 > hits2.saturating_mul(3),
            "specialist: {hits0}, other: {hits2}"
        );
    }
}
