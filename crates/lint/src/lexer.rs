//! A hand-rolled, lossless-enough Rust lexer.
//!
//! The rules in this crate are *token-level*: they never need a full
//! parse tree, but they must never be fooled by `==` inside a string
//! literal, `unwrap()` inside a comment, or a lifetime that looks like
//! an unterminated char literal. This lexer therefore handles, exactly:
//! line & nested block comments, string / raw string / byte string /
//! c-string literals with arbitrary `#` guards, char literals vs
//! lifetimes, numeric literals with suffixes and exponents, and
//! multi-character operators (longest match).
//!
//! It is intentionally forgiving: unknown bytes become one-character
//! punct tokens and an unterminated literal runs to end of file rather
//! than aborting the scan — a linter must degrade, not crash.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `as`, `unwrap`, …).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal (including hex/octal/binary and int suffixes).
    Int,
    /// Float literal (`1.0`, `1.`, `1e-3`, `2.5f64`).
    Float,
    /// String-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// Operator or delimiter; multi-character operators are one token.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokKind,
    /// Raw source text of the token (quotes/guards included for
    /// literals, `//`/`/*` markers included for comments).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for comment tokens.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// The inner content of a string-like literal (prefix, `#` guards
    /// and quotes stripped); `None` for non-string tokens.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != TokKind::Str {
            return None;
        }
        let s = self.text.trim_start_matches(['r', 'b', 'c']);
        let s = s.trim_start_matches('#');
        let s = s.strip_prefix('"')?;
        let s = s.trim_end_matches('#');
        s.strip_suffix('"').or(Some(s))
    }
}

/// Multi-character operators, longest first so maximal munch wins.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>", "::",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes a full source file into tokens (comments included, whitespace
/// dropped). Never fails: malformed input degrades to punct tokens.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let tok = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if let Some(t) = try_lex_string_like(&mut cur) {
            t
        } else if c == '\'' {
            lex_char_or_lifetime(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else if is_ident_start(c) {
            lex_ident(&mut cur)
        } else {
            lex_punct(&mut cur)
        };
        out.push(Token {
            kind: tok.0,
            text: tok.1,
            line,
            col,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    (TokKind::LineComment, text)
}

fn lex_block_comment(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    (TokKind::BlockComment, text)
}

/// Recognizes `"…"`, and the prefixed forms `r"…"`, `r#"…"#`, `b"…"`,
/// `br#"…"#`, `c"…"`, `cr"…"` at the cursor. Returns `None` when the
/// cursor is not at a string-like literal (e.g. a plain identifier `r`).
fn try_lex_string_like(cur: &mut Cursor) -> Option<(TokKind, String)> {
    let c = cur.peek(0)?;
    if c == '"' {
        return Some(lex_plain_string(cur, String::new()));
    }
    if !matches!(c, 'r' | 'b' | 'c') {
        return None;
    }
    // Collect a candidate prefix of at most two chars (r, b, c, br, cr).
    let mut prefix = String::from(c);
    let mut ahead = 1;
    if let Some(c2) = cur.peek(1) {
        if matches!((c, c2), ('b', 'r') | ('c', 'r')) {
            prefix.push(c2);
            ahead = 2;
        }
    }
    let raw = prefix.ends_with('r');
    // Count `#` guards (raw forms only), then require an opening quote.
    let mut hashes = 0usize;
    if raw {
        while cur.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
    }
    if cur.peek(ahead + hashes) != Some('"') {
        return None;
    }
    for _ in 0..ahead + hashes {
        cur.bump();
    }
    let mut text = prefix;
    for _ in 0..hashes {
        text.push('#');
    }
    if raw {
        Some(lex_raw_string(cur, text, hashes))
    } else {
        Some(lex_plain_string(cur, text))
    }
}

fn lex_plain_string(cur: &mut Cursor, mut text: String) -> (TokKind, String) {
    text.push('"');
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '"' {
            text.push(c);
            cur.bump();
            break;
        } else {
            text.push(c);
            cur.bump();
        }
    }
    (TokKind::Str, text)
}

fn lex_raw_string(cur: &mut Cursor, mut text: String, hashes: usize) -> (TokKind, String) {
    text.push('"');
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '"' {
            // Close only when followed by the right number of hashes.
            let closed = (1..=hashes).all(|i| cur.peek(i) == Some('#'));
            text.push(c);
            cur.bump();
            if closed {
                for _ in 0..hashes {
                    text.push('#');
                    cur.bump();
                }
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    (TokKind::Str, text)
}

fn lex_char_or_lifetime(cur: &mut Cursor) -> (TokKind, String) {
    // At a `'`. Lifetime iff an ident follows with no closing quote
    // right after its first char (`'a`, `'static` — but `'a'` is a char).
    let next = cur.peek(1);
    let after = cur.peek(2);
    let is_lifetime = match next {
        Some(n) if is_ident_start(n) => after != Some('\''),
        _ => false,
    };
    let mut text = String::new();
    text.push(cur.bump().expect("cursor at quote"));
    if is_lifetime {
        while let Some(c) = cur.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return (TokKind::Lifetime, text);
    }
    // Char literal: consume escape or single char, then the closing quote.
    if cur.peek(0) == Some('\\') {
        text.push(cur.bump().expect("escape backslash"));
        if let Some(esc) = cur.bump() {
            text.push(esc);
            if esc == 'u' {
                // '\u{…}' — consume through the closing brace.
                while let Some(c) = cur.peek(0) {
                    text.push(c);
                    cur.bump();
                    if c == '}' {
                        break;
                    }
                }
            }
        }
    } else if let Some(c) = cur.bump() {
        text.push(c);
    }
    if cur.peek(0) == Some('\'') {
        text.push('\'');
        cur.bump();
    }
    (TokKind::Char, text)
}

fn lex_number(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    let mut float = false;
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
        // Radix-prefixed integer: digits in the widest class plus `_`.
        text.push(cur.bump().expect("radix zero"));
        text.push(cur.bump().expect("radix marker"));
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_hexdigit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    } else {
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        // Fraction part — but `1..5` is `1`, `..`, `5` and `1.max(2)` is
        // a method call, so a `.` joins only when not followed by
        // another `.` or an identifier start.
        if cur.peek(0) == Some('.') {
            let after = cur.peek(1);
            let joins = match after {
                Some(c) => c.is_ascii_digit() || !(c == '.' || is_ident_start(c)),
                None => true,
            };
            if joins {
                float = true;
                text.push('.');
                cur.bump();
                while let Some(c) = cur.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Exponent part.
        if matches!(cur.peek(0), Some('e' | 'E')) {
            let (sign, digit) = (cur.peek(1), cur.peek(2));
            let has_exp = match sign {
                Some(c) if c.is_ascii_digit() => true,
                Some('+' | '-') => matches!(digit, Some(d) if d.is_ascii_digit()),
                _ => false,
            };
            if has_exp {
                float = true;
                text.push(cur.bump().expect("exponent marker"));
                if matches!(cur.peek(0), Some('+' | '-')) {
                    text.push(cur.bump().expect("exponent sign"));
                }
                while let Some(c) = cur.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
    }
    // Type suffix (`f64`, `u32`, …) decides the class when present.
    if matches!(cur.peek(0), Some(c) if is_ident_start(c)) {
        let mut suffix = String::new();
        while let Some(c) = cur.peek(0) {
            if is_ident_continue(c) {
                suffix.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with('f') {
            float = true;
        }
        text.push_str(&suffix);
    }
    (if float { TokKind::Float } else { TokKind::Int }, text)
}

fn lex_ident(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    (TokKind::Ident, text)
}

fn lex_punct(cur: &mut Cursor) -> (TokKind, String) {
    for op in MULTI_PUNCT {
        if op.chars().enumerate().all(|(i, c)| cur.peek(i) == Some(c)) {
            for _ in 0..op.len() {
                cur.bump();
            }
            return (TokKind::Punct, (*op).to_string());
        }
    }
    let c = cur.bump().expect("cursor at punct");
    (TokKind::Punct, c.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_comment())
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn operators_use_maximal_munch() {
        assert_eq!(
            code_texts("a == b != c -> d => e :: f"),
            vec!["a", "==", "b", "!=", "c", "->", "d", "=>", "e", "::", "f"]
        );
    }

    #[test]
    fn float_and_int_literals() {
        let toks = kinds("1 1.0 1. 1e-3 2.5f64 3f32 7u32 0xFF 1_000 0b101");
        let want = [
            (TokKind::Int, "1"),
            (TokKind::Float, "1.0"),
            (TokKind::Float, "1."),
            (TokKind::Float, "1e-3"),
            (TokKind::Float, "2.5f64"),
            (TokKind::Float, "3f32"),
            (TokKind::Int, "7u32"),
            (TokKind::Int, "0xFF"),
            (TokKind::Int, "1_000"),
            (TokKind::Int, "0b101"),
        ];
        for (tok, (k, t)) in toks.iter().zip(want) {
            assert_eq!(tok, &(k, t.to_string()));
        }
    }

    #[test]
    fn range_does_not_eat_a_fraction() {
        assert_eq!(code_texts("0..n"), vec!["0", "..", "n"]);
        assert_eq!(code_texts("1..=5"), vec!["1", "..=", "5"]);
        // Method call on an integer literal stays an integer.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Int, "1".to_string()));
    }

    #[test]
    fn comments_swallow_operators_and_calls() {
        let src = "x // a == b and y.unwrap()\n/* p == 1.0 /* nested */ q.unwrap() */ z";
        assert_eq!(code_texts(src), vec!["x", "z"]);
        let comments: Vec<_> = lex(src).into_iter().filter(Token::is_comment).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("=="));
        assert!(comments[1].text.contains("nested"));
    }

    #[test]
    fn strings_swallow_operators_and_keep_content() {
        let src = r#"let s = "a == b \" unwrap()"; t"#;
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).expect("str");
        assert_eq!(s.str_content(), Some(r#"a == b \" unwrap()"#));
        assert!(code_texts(src).contains(&"t".to_string()));
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r###"r#"x == y "quoted" z"# tail"###;
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[0].str_content(), Some(r#"x == y "quoted" z"#));
        assert_eq!(toks[1].text, "tail");
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = lex(r##"b"bytes" c"cstr" br#"raw"# rest"##);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[1].kind, TokKind::Str);
        assert_eq!(toks[2].kind, TokKind::Str);
        assert_eq!(toks[3].text, "rest");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("'a 'static 'x' '\\n' '\\u{1F600}' '('");
        assert_eq!(toks[0], (TokKind::Lifetime, "'a".to_string()));
        assert_eq!(toks[1], (TokKind::Lifetime, "'static".to_string()));
        assert_eq!(toks[2], (TokKind::Char, "'x'".to_string()));
        assert_eq!(toks[3].0, TokKind::Char);
        assert_eq!(toks[4].0, TokKind::Char);
        assert_eq!(toks[5].0, TokKind::Char);
    }

    #[test]
    fn identifier_r_is_not_a_raw_string() {
        assert_eq!(code_texts("r + b"), vec!["r", "+", "b"]);
        assert_eq!(code_texts("br(x)"), vec!["br", "(", "x", ")"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd == 1.0");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (2, 6));
        assert_eq!((toks[3].line, toks[3].col), (2, 9));
    }

    #[test]
    fn shift_operators_stay_single_tokens() {
        assert_eq!(code_texts("a >> b << c >>= d"), {
            vec!["a", ">>", "b", "<<", "c", ">>=", "d"]
        });
    }
}
