//! The `mp-lint` CLI.
//!
//! ```text
//! mp-lint [ROOT] [--json] [--deny-all] [--rule <id|name>]...
//!         [--baseline <file>] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean (warnings allowed), `1` deny-level findings or
//! new-vs-baseline fingerprints, `2` usage or I/O error. CI runs
//! `mp-lint --deny-all --json --baseline lint-baseline.json`.

use mp_lint::diagnostics::baseline_fingerprints;
use mp_lint::{lint_workspace, rule_by_name, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    deny_all: bool,
    rules: Vec<&'static str>,
    baseline: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: mp-lint [ROOT] [--json] [--deny-all] [--rule <id|name>]...\n\
     \x20              [--baseline <file>] [--list-rules]\n\
     \n\
     Lints the metaprobe workspace at ROOT (default: the current\n\
     directory) against the numeric/concurrency contract rules L1-L13.\n\
     See LINT.md for the rule catalog.\n\
     \n\
     --json         machine-readable output (stable shape, version 2)\n\
     --deny-all     promote warnings (L7, A1) to errors - the CI configuration\n\
     --rule R       only report rule R (repeatable)\n\
     --baseline F   fail (exit 1) listing any finding whose fingerprint\n\
     \x20              is not in the JSON report F - CI's lint-diff gate\n\
     --list-rules   print the rule catalog and exit"
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        deny_all: false,
        rules: Vec::new(),
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--deny-all" => args.deny_all = true,
            "--rule" => {
                let name = it.next().ok_or("--rule needs a value")?;
                let info = rule_by_name(&name).ok_or(format!("unknown rule `{name}`"))?;
                args.rules.push(info.id);
            }
            "--baseline" => {
                let f = it.next().ok_or("--baseline needs a file path")?;
                args.baseline = Some(PathBuf::from(f));
            }
            "--list-rules" => {
                for r in RULES {
                    println!("{:<3} {:<18} {}", r.id, r.name, r.summary);
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => args.root = PathBuf::from(path),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mp-lint: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if !args.root.join("Cargo.toml").is_file() {
        eprintln!(
            "mp-lint: `{}` does not look like a workspace root (no Cargo.toml)",
            args.root.display()
        );
        return ExitCode::from(2);
    }
    let mut report = match lint_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mp-lint: I/O error while scanning: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.rules.is_empty() {
        report.retain_rules(&args.rules);
    }
    if args.deny_all {
        report.deny_all();
    }
    if args.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    let mut failed = report.denies() > 0;
    if let Some(baseline_path) = &args.baseline {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => baseline_fingerprints(&text),
            Err(e) => {
                eprintln!(
                    "mp-lint: cannot read baseline `{}`: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        let fps = report.fingerprints();
        let mut fresh = 0usize;
        for (d, fp) in report.diagnostics.iter().zip(&fps) {
            if !baseline.contains(fp) {
                fresh += 1;
                eprintln!(
                    "mp-lint: new finding vs baseline: {fp} {}:{}:{} {}[{}] {}",
                    d.path,
                    d.line,
                    d.col,
                    if matches!(d.level, mp_lint::Level::Deny) {
                        "deny"
                    } else {
                        "warn"
                    },
                    d.rule,
                    d.message
                );
            }
        }
        if fresh > 0 {
            eprintln!(
                "mp-lint: {fresh} finding(s) not in baseline `{}`",
                baseline_path.display()
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
