//! Workspace graphs: an intra-crate call graph and a lock-acquisition
//! graph, feeding rule L12 (lock-order cycles → potential deadlock).
//!
//! ## How the lock graph is built
//!
//! For every non-test `fn` body the scanner tracks which lock guards
//! are *live* — a guard is born at a `.lock()` / `.read()` /
//! `.write()` (and `try_` variants) call, named if the statement is a
//! `let` binding (it then lives to the end of its enclosing brace
//! block or an explicit `drop(guard)`), anonymous otherwise (it lives
//! to the end of the statement). Reaching another lock acquisition —
//! or a `Condvar::wait(guard)` — while a guard is live adds a directed
//! edge `held lock → acquired lock`. Acquisitions are also propagated
//! **one call level** through the call graph: calling a crate-local
//! function while holding a guard adds edges from the held lock to
//! every lock that callee acquires directly.
//!
//! ## Lock identity
//!
//! Locks are named structurally, not by type: `self.state` inside
//! `impl BoundedQueue` is `serve::BoundedQueue::state`; a bare `self`
//! receiver (a lock-wrapper method like `BoundedQueue::lock`) is
//! `serve::BoundedQueue`; an accessor call like `self.shard(&key)` is
//! `serve::shard()` (keyed by accessor name, merging aliases — for
//! deadlock detection merging errs toward *finding* cycles); a
//! SCREAMING_CASE receiver is a crate-level static. Two names for the
//! same mutex can split an edge (a missed cycle, never a false one).
//! Call resolution is name-based within one crate — an
//! over-approximation — so *propagated* self-edges are discarded:
//! only a directly observed `A → A` re-entry counts as one.
//!
//! A cycle in the resulting graph means two code paths can acquire the
//! same locks in opposite orders — the class of bug `queue_stress.rs`
//! can only catch probabilistically, reported at build time instead.

use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::rules::{level_of, snippet_around};
use crate::syntax::{matching_backward, receiver_start, stmt_start, FnDecl};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Methods whose call on a receiver acquires a lock and yields a guard.
const ACQUIRE_METHODS: &[&str] = &["lock", "try_lock", "read", "try_read", "write", "try_write"];

/// Condvar wait methods: they take the guard as their first argument
/// (which distinguishes them from this workspace's argument-less
/// `wait()` rendezvous helpers) and re-acquire the associated mutex.
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// Names that look like `name(` but are never crate-local calls.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "move", "in", "as", "else", "let",
    "mut", "ref", "Some", "Ok", "Err", "None", "drop",
];

/// Keywords that, directly before `name(`, make it a declaration or
/// pattern rather than a call.
const DECL_BEFORE: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "union",
    "trait",
    "type",
    "macro_rules",
];

/// One direct lock acquisition inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    lock: String,
}

/// A call site observed while at least one guard was live.
#[derive(Debug, Clone)]
struct CallSite {
    target: CallTarget,
    live: Vec<String>,
    file: usize,
    tok: usize,
}

#[derive(Debug, Clone)]
enum CallTarget {
    /// `name(…)` — a crate-local free function.
    Free(String),
    /// `self.name(…)` or `Type::name(…)` — a method of `type` in the
    /// same crate.
    Method(String, String),
}

/// Everything the graph layer extracted from one function.
#[derive(Debug, Clone)]
struct FnInfo {
    krate: String,
    name: String,
    impl_ty: Option<String>,
    key: String,
    /// Locks this fn acquires directly (guard-yielding calls only).
    acquisitions: Vec<Acq>,
    /// Directly observed `held → acquired` edges: (from, to, file, tok).
    edges: Vec<(String, String, usize, usize)>,
    /// Resolvable call sites reached while holding at least one guard.
    calls: Vec<CallSite>,
}

/// Where a lock-graph edge was observed (for diagnostics).
#[derive(Debug, Clone)]
struct EdgeSite {
    path: String,
    line: u32,
    col: u32,
    snippet: String,
}

/// The derived workspace graphs plus the L12 findings they imply.
#[derive(Debug, Default)]
pub struct WorkspaceGraph {
    /// Intra-crate call graph: caller fn key → callee fn keys
    /// (`crate::Type::name` / `crate::name`), name-resolved — a
    /// conservative over-approximation.
    pub calls: BTreeMap<String, BTreeSet<String>>,
    /// Lock-acquisition graph: `held → acquired` lock-identity edges.
    pub lock_edges: BTreeMap<String, BTreeSet<String>>,
    sites: BTreeMap<(String, String), EdgeSite>,
    cycle_diags: Vec<Diagnostic>,
}

impl WorkspaceGraph {
    /// Builds the call and lock graphs over a set of analyzed files
    /// (one crate or many — resolution never crosses crate boundaries)
    /// and runs cycle detection.
    pub fn build(analyses: &[Analysis]) -> Self {
        let mut fns: Vec<FnInfo> = Vec::new();
        for (fi, a) in analyses.iter().enumerate() {
            for f in &a.syntax.fns {
                if f.body.is_none() || a.is_test[f.fn_idx] {
                    continue;
                }
                fns.push(scan_fn(a, f, fi));
            }
        }
        let mut g = WorkspaceGraph::default();
        for f in &fns {
            for (from, to, file, tok) in &f.edges {
                g.add_edge(analyses, from, to, *file, *tok);
            }
            for c in &f.calls {
                for ci in resolve(&fns, &f.krate, &c.target) {
                    g.calls
                        .entry(f.key.clone())
                        .or_default()
                        .insert(fns[ci].key.clone());
                    // One-level propagation: every lock the callee
                    // acquires directly is reachable while `c.live`
                    // guards are held.
                    for acq in &fns[ci].acquisitions {
                        for held in &c.live {
                            // Name-resolution over-approximates: a
                            // propagated self-edge is far more likely an
                            // alias of the held lock than a true
                            // re-entry, so only direct re-entries count.
                            if held != &acq.lock {
                                g.add_edge(analyses, held, &acq.lock, c.file, c.tok);
                            }
                        }
                    }
                }
            }
        }
        g.cycle_diags = g.find_cycles();
        g
    }

    /// The L12 diagnostics whose anchor site lies in `path`.
    pub fn diags_for(&self, path: &str) -> Vec<Diagnostic> {
        self.cycle_diags
            .iter()
            .filter(|d| d.path == path)
            .cloned()
            .collect()
    }

    fn add_edge(&mut self, analyses: &[Analysis], from: &str, to: &str, file: usize, tok: usize) {
        self.lock_edges
            .entry(from.to_string())
            .or_default()
            .insert(to.to_string());
        let a = &analyses[file];
        let t = &a.code[tok];
        self.sites
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(|| EdgeSite {
                path: a.path.clone(),
                line: t.line,
                col: t.col,
                snippet: snippet_around(a, tok),
            });
    }

    /// One diagnostic per distinct cycle class (identified by its
    /// lexicographically smallest lock), anchored at the cycle's first
    /// edge site, naming the full lock chain.
    fn find_cycles(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for start in self.lock_edges.keys() {
            let Some(chain) = self.shortest_cycle(start) else {
                continue;
            };
            // Dedup: report each cycle only from its smallest member.
            if chain[..chain.len() - 1].iter().min() != Some(start) {
                continue;
            }
            let site = &self.sites[&(chain[0].clone(), chain[1].clone())];
            out.push(Diagnostic {
                rule: "L12",
                level: level_of("L12"),
                path: site.path.clone(),
                line: site.line,
                col: site.col,
                message: format!("potential deadlock: lock-order cycle {}", chain.join(" → ")),
                snippet: site.snippet.clone(),
                hint: "acquire these locks in one global order everywhere, or drop the \
                       held guard before taking the next lock (see DESIGN.md §8)"
                    .to_string(),
            });
        }
        out
    }

    /// BFS: shortest chain `start → … → start`, if any.
    fn shortest_cycle(&self, start: &str) -> Option<Vec<String>> {
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        for next in self.lock_edges.get(start)? {
            if next == start {
                return Some(vec![start.to_string(), start.to_string()]);
            }
            if !parent.contains_key(next.as_str()) {
                parent.insert(next, start);
                queue.push_back(next);
            }
        }
        while let Some(u) = queue.pop_front() {
            let Some(succs) = self.lock_edges.get(u) else {
                continue;
            };
            for v in succs {
                if v == start {
                    let mut rev = vec![u];
                    let mut c = u;
                    while let Some(&p) = parent.get(c) {
                        if p == start {
                            break;
                        }
                        rev.push(p);
                        c = p;
                    }
                    let mut chain = vec![start.to_string()];
                    chain.extend(rev.into_iter().rev().map(str::to_string));
                    chain.push(start.to_string());
                    return Some(chain);
                }
                if !parent.contains_key(v.as_str()) {
                    parent.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

/// Indices of the `FnInfo`s a call target resolves to within `krate`.
fn resolve(fns: &[FnInfo], krate: &str, target: &CallTarget) -> Vec<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| {
            f.krate == krate
                && match target {
                    CallTarget::Free(n) => f.impl_ty.is_none() && &f.name == n,
                    CallTarget::Method(ty, n) => f.impl_ty.as_deref() == Some(ty) && &f.name == n,
                }
        })
        .map(|(i, _)| i)
        .collect()
}

/// Scans one function body: direct acquisitions, guard liveness, the
/// edges observed directly, and call sites with their live-lock sets.
fn scan_fn(a: &Analysis, f: &FnDecl, file: usize) -> FnInfo {
    let code = &a.code;
    let krate = &a.crate_name;
    let key = match &f.impl_ty {
        Some(ty) => format!("{krate}::{ty}::{}", f.name),
        None => format!("{krate}::{}", f.name),
    };
    let mut info = FnInfo {
        krate: krate.clone(),
        name: f.name.clone(),
        impl_ty: f.impl_ty.clone(),
        key,
        acquisitions: Vec::new(),
        edges: Vec::new(),
        calls: Vec::new(),
    };
    let Some((open, close)) = f.body else {
        return info;
    };
    // (name, lock id, brace depth at binding) — dies when its block
    // closes or `drop(name)` runs.
    let mut guards: Vec<(Option<String>, String, i32)> = Vec::new();
    // Anonymous guards: live to the end of the current statement.
    let mut stmt_temps: Vec<String> = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i <= close.min(code.len() - 1) {
        let t = &code[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                stmt_temps.clear();
            }
            "}" => {
                depth -= 1;
                guards.retain(|g| g.2 <= depth);
                stmt_temps.clear();
            }
            ";" => stmt_temps.clear(),
            "drop"
                if t.kind == TokKind::Ident
                    && code.get(i + 1).is_some_and(|n| n.text == "(")
                    && code.get(i + 3).is_some_and(|n| n.text == ")") =>
            {
                if let Some(victim) = code.get(i + 2) {
                    guards.retain(|g| g.0.as_deref() != Some(victim.text.as_str()));
                }
            }
            "." => {
                if let Some((lock, binds)) = acquisition_at(a, f, i) {
                    for held in live_locks(&guards, &stmt_temps) {
                        if held != lock {
                            info.edges.push((held, lock.clone(), file, i + 1));
                        }
                    }
                    if binds {
                        info.acquisitions.push(Acq { lock: lock.clone() });
                        match binding_name(code, i) {
                            Some(name) => guards.push((Some(name), lock, depth)),
                            None => stmt_temps.push(lock),
                        }
                    }
                }
            }
            _ => {}
        }
        // Call-site detection (independent of the match above: an
        // acquisition method that is *also* a crate-local wrapper like
        // `BoundedQueue::lock` is seen by both layers).
        if t.kind == TokKind::Ident
            && code.get(i + 1).is_some_and(|n| n.text == "(")
            && !NOT_CALLS.contains(&t.text.as_str())
        {
            if let Some(target) = call_target(code, i, f) {
                let live = live_locks(&guards, &stmt_temps);
                if !live.is_empty() {
                    info.calls.push(CallSite {
                        target,
                        live,
                        file,
                        tok: i,
                    });
                }
            }
        }
        i += 1;
    }
    info
}

fn live_locks(guards: &[(Option<String>, String, i32)], stmt_temps: &[String]) -> Vec<String> {
    let mut out: Vec<String> = guards.iter().map(|g| g.1.clone()).collect();
    out.extend(stmt_temps.iter().cloned());
    out.sort();
    out.dedup();
    out
}

/// If the `.` at `dot` starts a lock-acquisition or condvar-wait call,
/// returns the acquired lock's identity and whether the call yields a
/// guard (waits re-acquire but hand the same guard back — no new
/// binding).
fn acquisition_at(a: &Analysis, f: &FnDecl, dot: usize) -> Option<(String, bool)> {
    let code = &a.code;
    let m = code.get(dot + 1)?;
    if m.kind != TokKind::Ident || code.get(dot + 2)?.text != "(" {
        return None;
    }
    let name = m.text.as_str();
    if ACQUIRE_METHODS.contains(&name) {
        Some((lock_identity(a, f, dot), true))
    } else if WAIT_METHODS.contains(&name) && code.get(dot + 3)?.text != ")" {
        // `.wait(guard)` — the argument distinguishes a real condvar
        // wait from argument-less rendezvous helpers named `wait`.
        Some((lock_identity(a, f, dot), false))
    } else {
        None
    }
}

/// Structural identity of the lock acquired by the call at `dot` (see
/// module docs for the naming scheme).
fn lock_identity(a: &Analysis, f: &FnDecl, dot: usize) -> String {
    let code = &a.code;
    let krate = &a.crate_name;
    let scope = f.impl_ty.clone().unwrap_or_else(|| f.name.clone());
    let rstart = receiver_start(code, dot);
    let recv = &code[rstart..dot];
    if recv.is_empty() {
        return format!("{krate}::{scope}::<expr>");
    }
    if recv.len() == 1 && recv[0].text == "self" {
        return format!("{krate}::{scope}");
    }
    if recv.last().is_some_and(|t| t.text == ")") {
        // Accessor call: keyed by accessor name (merges aliases).
        let callee = matching_backward(code, dot - 1, "(", ")")
            .filter(|&o| o > rstart)
            .and_then(|o| code.get(o - 1))
            .filter(|t| t.kind == TokKind::Ident)
            .map_or("<call>", |t| t.text.as_str());
        return format!("{krate}::{callee}()");
    }
    let Some(last) = recv.iter().rev().find(|t| t.kind == TokKind::Ident) else {
        return format!("{krate}::{scope}::<expr>");
    };
    if recv[0].text != "self" && is_screaming(&last.text) {
        return format!("{krate}::{}", last.text);
    }
    format!("{krate}::{scope}::{}", last.text)
}

fn is_screaming(s: &str) -> bool {
    s.chars()
        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && s.chars().any(|c| c.is_ascii_uppercase())
}

/// If the statement holding the acquisition at `dot` is a `let`
/// binding, the bound guard's name (handles `let mut g`,
/// `if let Ok(mut g)`, `let Some(g)`).
fn binding_name(code: &[Token], dot: usize) -> Option<String> {
    let rstart = receiver_start(code, dot);
    let mut j = stmt_start(code, rstart);
    while code
        .get(j)
        .is_some_and(|t| matches!(t.text.as_str(), "if" | "while" | "else"))
    {
        j += 1;
    }
    if code.get(j)?.text != "let" {
        return None;
    }
    j += 1;
    if code.get(j)?.text == "mut" {
        j += 1;
    }
    let t = code.get(j)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    if matches!(t.text.as_str(), "Ok" | "Some") && code.get(j + 1).is_some_and(|n| n.text == "(") {
        let mut k = j + 2;
        if code.get(k).is_some_and(|n| n.text == "mut") {
            k += 1;
        }
        let inner = code.get(k)?;
        if inner.kind == TokKind::Ident {
            return Some(inner.text.clone());
        }
        return None;
    }
    Some(t.text.clone())
}

/// Classifies the call at ident `i` (followed by `(`) into a resolvable
/// target: `self.name(…)`, `Type::name(…)`, or a bare free-fn call.
/// Method calls on arbitrary expressions return `None` — the receiver
/// type is unknowable at this layer, and an unresolved call adds no
/// edges (an under-approximation: the right direction for a deny rule).
fn call_target(code: &[Token], i: usize, f: &FnDecl) -> Option<CallTarget> {
    if i == 0 {
        return Some(CallTarget::Free(code[i].text.clone()));
    }
    let prev = &code[i - 1];
    match prev.text.as_str() {
        "." => {
            // Only a *direct* `self.name(` — deeper chains like
            // `self.field.name(` have an unknown receiver type.
            if i >= 2 && code[i - 2].text == "self" && (i < 3 || code[i - 3].text != ".") {
                return f
                    .impl_ty
                    .clone()
                    .map(|ty| CallTarget::Method(ty, code[i].text.clone()));
            }
            None
        }
        "::" => {
            let ty = code.get(i.checked_sub(2)?)?;
            if ty.kind != TokKind::Ident {
                return None;
            }
            let ty_name = if ty.text == "Self" {
                f.impl_ty.clone()?
            } else if ty
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
            {
                ty.text.clone()
            } else {
                // `module::name(` — the module is usually another crate.
                return None;
            };
            Some(CallTarget::Method(ty_name, code[i].text.clone()))
        }
        t if DECL_BEFORE.contains(&t) => None,
        _ => Some(CallTarget::Free(code[i].text.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Analysis, FileClass};

    fn graph(src: &str) -> WorkspaceGraph {
        let a = Analysis::build("crates/demo/src/lib.rs", src, FileClass::default());
        WorkspaceGraph::build(std::slice::from_ref(&a))
    }

    #[test]
    fn direct_nested_acquisition_makes_an_edge() {
        let g = graph(
            "impl Pair { fn both(&self) {\n\
               let a = self.left.lock().expect(\"x\");\n\
               let b = self.right.lock().expect(\"x\");\n\
             } }",
        );
        let succs = g
            .lock_edges
            .get("demo::Pair::left")
            .expect("edge from left");
        assert!(succs.contains("demo::Pair::right"));
        assert!(g.cycle_diags.is_empty(), "one order, no cycle");
    }

    #[test]
    fn dropped_and_block_scoped_guards_make_no_edges() {
        let g = graph(
            "impl Pair { fn a(&self) {\n\
               let g = self.left.lock().expect(\"x\");\n\
               drop(g);\n\
               let h = self.right.lock().expect(\"x\");\n\
             }\n\
             fn b(&self) {\n\
               { let g = self.right.lock().expect(\"x\"); }\n\
               let h = self.left.lock().expect(\"x\");\n\
             } }",
        );
        assert!(g.lock_edges.is_empty(), "edges: {:?}", g.lock_edges);
    }

    #[test]
    fn two_fn_cycle_via_call_propagation_is_found_with_chain() {
        let g = graph(
            "impl Pair {\n\
               fn ab(&self) {\n\
                 let a = self.left.lock().expect(\"x\");\n\
                 let b = self.right.lock().expect(\"x\");\n\
               }\n\
               fn ba(&self) {\n\
                 let b = self.right.lock().expect(\"x\");\n\
                 self.grab_left();\n\
               }\n\
               fn grab_left(&self) { let g = self.left.lock().expect(\"x\"); }\n\
             }",
        );
        assert_eq!(g.cycle_diags.len(), 1, "{:?}", g.cycle_diags);
        let msg = &g.cycle_diags[0].message;
        assert!(
            msg.contains("demo::Pair::left → demo::Pair::right → demo::Pair::left"),
            "full chain named: {msg}"
        );
    }

    #[test]
    fn condvar_wait_edges_do_not_cycle() {
        let g = graph(
            "impl Q { fn pop(&self) {\n\
               let mut st = self.state.lock().expect(\"x\");\n\
               loop { st = self.not_empty.wait(st).expect(\"x\"); }\n\
             } }",
        );
        let succs = g.lock_edges.get("demo::Q::state").expect("state edge");
        assert!(succs.contains("demo::Q::not_empty"));
        assert!(g.cycle_diags.is_empty());
    }

    #[test]
    fn test_code_and_rendezvous_waits_are_ignored() {
        let g = graph(
            "#[cfg(test)] mod t { fn f(p: &Pair) {\n\
               let a = p.left.lock().unwrap(); let b = p.right.lock().unwrap(); } }\n\
             impl Flight { fn join(&self) { self.flight.wait() } }",
        );
        assert!(g.lock_edges.is_empty());
    }

    #[test]
    fn call_graph_resolves_self_methods_and_free_fns() {
        let g = graph(
            "fn helper() { let g = LOCK_A.lock().expect(\"x\"); }\n\
             impl S { fn outer(&self) {\n\
               let g = self.m.lock().expect(\"x\");\n\
               helper();\n\
             } }",
        );
        assert!(g
            .calls
            .get("demo::S::outer")
            .is_some_and(|c| c.contains("demo::helper")));
        let succs = g.lock_edges.get("demo::S::m").expect("propagated edge");
        assert!(succs.contains("demo::LOCK_A"));
    }

    #[test]
    fn explicit_drop_before_call_prevents_propagated_edges() {
        let g = graph(
            "fn helper() { let g = LOCK_A.lock().expect(\"x\"); }\n\
             impl S { fn outer(&self) {\n\
               let g = self.m.lock().expect(\"x\");\n\
               drop(g);\n\
               helper();\n\
             } }",
        );
        assert!(g.lock_edges.is_empty(), "edges: {:?}", g.lock_edges);
    }
}
