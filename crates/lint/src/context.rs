//! Per-file analysis context shared by every rule: which tokens live in
//! test code, which `impl` block a token belongs to (so `-> Self` can be
//! resolved), and the `mp-lint: allow(...)` suppression comments.

use crate::diagnostics::{Diagnostic, Level};
use crate::lexer::{lex, TokKind, Token};
use crate::rules::rule_by_name;
use crate::syntax::FileSyntax;

/// Crates whose `src/` is held to the library-crate rules (L3
/// no-unwrap, L8 no-println, L10 no-hash-order-iteration). The single
/// source of truth — `walk::classify` and the rules all read this
/// list. The binary-facing crates (`cli`, `bench`) are not on it:
/// `expect` on malformed CLI arguments and printing to stdout *are*
/// their job.
pub const LIBRARY_CRATES: &[&str] = &[
    "stats", "text", "index", "corpus", "hidden", "workload", "core", "eval", "lint", "obs",
    "serve",
];

/// Crates under the deterministic-output contract: every public result
/// must be a pure function of (inputs, seed), bit-identical across
/// thread counts and runs — the property the equivalence harness and
/// the twin-replay tests pin. L13 bans ambient nondeterminism sources
/// (`Instant::now`, `SystemTime`, `thread::current().id()`,
/// `std::env::var`, `RandomState`) in their `src/` outside test code.
/// `obs` is deliberately absent: timing is its whole point, and it is
/// feature-gated off the deterministic result path.
pub const DETERMINISTIC_CRATES: &[&str] = &["core", "hidden", "index", "stats"];

/// Modules registered as counter-only atomic users, where
/// `Ordering::Relaxed` is sound by construction: every atomic in them
/// is an independent monotonic counter / gauge / flag whose value is
/// never used to publish other memory. Everywhere else L11 requires
/// acquire/release pairs with a written invariant. Grown deliberately:
/// registering a module here is the review point.
pub const RELAXED_COUNTER_MODULES: &[&str] = &[
    "crates/core/src/par.rs",
    "crates/hidden/src/db.rs",
    "crates/hidden/src/unreliable.rs",
    "crates/obs/src/lib.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/recorder.rs",
    "crates/obs/src/registry.rs",
    "crates/obs/src/stripe.rs",
    "crates/obs/src/trace.rs",
    "crates/obs/src/window.rs",
    "crates/serve/src/stats.rs",
];

/// How a file is classified by the workspace walker; drives which rules
/// apply (see LINT.md "Scope").
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Whole file is test/bench/example code: L1–L6 and L8 are skipped.
    pub test_file: bool,
    /// File belongs to a library crate: L3 (unwrap/expect) applies.
    pub l3_library: bool,
    /// File is the sanctioned thread-spawn site (`mp-core::par`): L4 is
    /// skipped.
    pub l4_exempt: bool,
    /// File belongs to a library crate: L8 (no print macros) applies.
    /// Tracks `l3_library` today; kept separate so the two scopes can
    /// diverge without re-classifying the workspace.
    pub l8_library: bool,
    /// File is a serve-hot-path module (the worker-facing serving and
    /// probe layers): L9 applies — every shared-lock primitive must
    /// carry an `allow(L9)` audit note or be removed.
    pub l9_hot_path: bool,
    /// File belongs to a library crate ([`LIBRARY_CRATES`]): L10
    /// (hash-order iteration) applies.
    pub l10_library: bool,
    /// File is a registered counter-only atomics module
    /// ([`RELAXED_COUNTER_MODULES`]): `Ordering::Relaxed` is permitted.
    pub l11_relaxed_ok: bool,
    /// File belongs to a deterministic-contract crate
    /// ([`DETERMINISTIC_CRATES`]): L13 (ambient nondeterminism sources)
    /// applies.
    pub l13_deterministic: bool,
}

/// A parsed `// mp-lint: allow(rule, …): justification` comment. The
/// suppression covers matching diagnostics on its own line and the line
/// directly below (so it can sit on the offending line or above it).
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Canonical rule ids the comment allows (e.g. `["L2"]`).
    pub rules: Vec<&'static str>,
    /// Line the comment starts on.
    pub line: u32,
    /// Column the comment starts at (for A1 stale-suppression
    /// diagnostics, which point at the comment itself).
    pub col: u32,
    /// The comment text, trimmed (used as the A1 snippet).
    pub text: String,
}

/// Everything the rules need to know about one file.
pub struct Analysis {
    /// Code tokens (comments stripped), in source order.
    pub code: Vec<Token>,
    /// Parallel to `code`: token is inside `#[cfg(test)]` / `#[test]`
    /// scope (or the whole file is a test file).
    pub is_test: Vec<bool>,
    /// Parallel to `code`: the innermost `impl` block's type name.
    pub impl_ty: Vec<Option<String>>,
    /// Comment tokens, for L7 and suppression parsing.
    pub comments: Vec<Token>,
    /// Active suppressions.
    pub suppressions: Vec<Suppression>,
    /// Diagnostics produced while building the context itself
    /// (malformed suppression comments).
    pub meta_diags: Vec<Diagnostic>,
    /// How the walker classified this file.
    pub class: FileClass,
    /// Display path used in diagnostics.
    pub path: String,
    /// The syntax-lite structural layer (fn items, use spans,
    /// hash-typed binding names).
    pub syntax: FileSyntax,
    /// The crate this file belongs to (`crates/<name>/…` → `name`, the
    /// umbrella `src/` → `metaprobe`, anything else → `local`). Scopes
    /// the workspace call/lock graphs, which are intra-crate.
    pub crate_name: String,
}

impl Analysis {
    /// Lexes and analyzes one file.
    pub fn build(path: &str, source: &str, class: FileClass) -> Self {
        let toks = lex(source);
        let (code, comments): (Vec<Token>, Vec<Token>) =
            toks.into_iter().partition(|t| !t.is_comment());
        let is_test = if class.test_file {
            vec![true; code.len()]
        } else {
            test_mask(&code)
        };
        let impl_ty = impl_types(&code);
        let mut meta_diags = Vec::new();
        let suppressions = parse_suppressions(path, &comments, &mut meta_diags);
        let syntax = FileSyntax::build(&code, &impl_ty);
        Self {
            code,
            is_test,
            impl_ty,
            comments,
            suppressions,
            meta_diags,
            class,
            path: path.to_string(),
            syntax,
            crate_name: crate_of(path),
        }
    }

    /// True when a diagnostic of `rule` at `line` is covered by a
    /// suppression comment (same line or the line above).
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rules.contains(&rule) && (s.line == line || s.line + 1 == line))
    }
}

/// Maps a workspace-relative display path to the crate it belongs to.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("local").to_string(),
        Some("src" | "tests" | "examples" | "benches") => "metaprobe".to_string(),
        _ => "local".to_string(),
    }
}

/// Marks every code token inside an item annotated `#[test]`,
/// `#[cfg(test)]`, or `#[cfg_attr(…, test)]` — including everything in
/// `mod tests { … }` blocks gated that way.
fn test_mask(code: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if code[i].text == "#" && i + 1 < code.len() && code[i + 1].text == "[" {
            let close = matching_bracket(code, i + 1);
            let attr = &code[i + 2..close.min(code.len())];
            if is_test_attr(attr) {
                // Skip any further attributes, then mark the annotated
                // item: to the matching `}` of its first brace, or to
                // the `;` for brace-less items.
                let mut j = close + 1;
                while j + 1 < code.len() && code[j].text == "#" && code[j + 1].text == "[" {
                    j = matching_bracket(code, j + 1) + 1;
                }
                let mut k = j;
                while k < code.len() && code[k].text != "{" && code[k].text != ";" {
                    k += 1;
                }
                let end = if k < code.len() && code[k].text == "{" {
                    matching_brace(code, k)
                } else {
                    k
                };
                for slot in mask.iter_mut().take(end.min(code.len() - 1) + 1).skip(i) {
                    *slot = true;
                }
                i = close + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

fn is_test_attr(attr: &[Token]) -> bool {
    let texts: Vec<&str> = attr.iter().map(|t| t.text.as_str()).collect();
    match texts.first() {
        // `#[test]`, with or without trailing tokens (none in practice).
        Some(&"test") => true,
        // `#[cfg(test)]`, `#[cfg(all(test, …))]`, …
        Some(&"cfg") => texts.contains(&"test"),
        // `#[cfg_attr(any(...), test)]` style.
        Some(&"cfg_attr") => texts.contains(&"test"),
        _ => false,
    }
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(code: &[Token], open: usize) -> usize {
    matching(code, open, "[", "]")
}

/// Index of the `}` matching the `{` at `open`.
pub(crate) fn matching_brace(code: &[Token], open: usize) -> usize {
    matching(code, open, "{", "}")
}

fn matching(code: &[Token], open: usize, o: &str, c: &str) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    code.len().saturating_sub(1)
}

/// For every code token, the type name of the innermost enclosing
/// `impl` block (`impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`).
fn impl_types(code: &[Token]) -> Vec<Option<String>> {
    let mut out = vec![None; code.len()];
    let mut stack: Vec<(usize, String)> = Vec::new(); // (close index, type)
    let mut i = 0usize;
    while i < code.len() {
        while let Some(&(close, _)) = stack.last() {
            if i > close {
                stack.pop();
            } else {
                break;
            }
        }
        out[i] = stack.last().map(|(_, ty)| ty.clone());
        if code[i].kind == TokKind::Ident && code[i].text == "impl" {
            if let Some((open, ty)) = parse_impl_header(code, i) {
                let close = matching_brace(code, open);
                stack.push((close, ty));
            }
        }
        i += 1;
    }
    out
}

/// From an `impl` keyword, finds the implemented type name and the index
/// of the body's `{`. Returns `None` for `impl Trait`-in-type positions
/// (no body brace before a terminator).
fn parse_impl_header(code: &[Token], impl_idx: usize) -> Option<(usize, String)> {
    let mut j = impl_idx + 1;
    let mut angle = 0i32;
    let mut segment: Vec<&Token> = Vec::new();
    let mut after_for: Option<usize> = None;
    while j < code.len() {
        let t = &code[j];
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "{" if angle <= 0 => {
                let seg_start = after_for.unwrap_or(0);
                let ty = segment[seg_start.min(segment.len())..]
                    .iter()
                    .find(|t| {
                        t.kind == TokKind::Ident
                            && !matches!(t.text.as_str(), "dyn" | "mut" | "for")
                    })
                    .map(|t| t.text.clone())?;
                return Some((j, ty));
            }
            ";" | "(" | ")" | "," | "=" if angle <= 0 => return None,
            "for" if angle <= 0 => after_for = Some(segment.len()),
            "where" if angle <= 0 => {
                // Type segment ended; scan on for the body brace.
                while j < code.len() && code[j].text != "{" && code[j].text != ";" {
                    j += 1;
                }
                continue;
            }
            _ => {}
        }
        if angle <= 0 {
            segment.push(t);
        }
        j += 1;
    }
    None
}

/// Parses `mp-lint: allow(rule[, rule…]) <justification>` comments.
/// A missing/short justification or an unknown rule name is itself a
/// deny-level diagnostic (rule `A0`): silent, unexplained suppressions
/// are exactly what this linter exists to prevent.
fn parse_suppressions(
    path: &str,
    comments: &[Token],
    meta: &mut Vec<Diagnostic>,
) -> Vec<Suppression> {
    const MARKER: &str = "mp-lint:";
    const MIN_JUSTIFICATION: usize = 8;
    let mut out = Vec::new();
    for c in comments {
        // Only a comment that *begins* with the marker (after the
        // `//`/`//!`/`///` prefix) is a directive; prose that mentions
        // the syntax mid-sentence — e.g. docs describing it — is not.
        let body = c.text.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim_start();
        let mut diag = |msg: String| {
            meta.push(Diagnostic {
                rule: "A0",
                level: Level::Deny,
                path: path.to_string(),
                line: c.line,
                col: c.col,
                message: msg,
                snippet: c.text.trim().to_string(),
                hint: "write `// mp-lint: allow(<rule>): <why this is sound>`".to_string(),
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            diag("malformed mp-lint directive (expected `allow(<rule>)`)".to_string());
            continue;
        };
        let Some(close) = args.find(')') else {
            diag("unterminated `allow(` in mp-lint directive".to_string());
            continue;
        };
        let mut rules = Vec::new();
        let mut ok = true;
        for name in args[..close].split(',') {
            match rule_by_name(name.trim()) {
                Some(info) => rules.push(info.id),
                None => {
                    diag(format!("unknown rule `{}` in allow()", name.trim()));
                    ok = false;
                }
            }
        }
        let justification = args[close + 1..]
            .trim_start_matches([':', '-', '—', ' '])
            .trim();
        if justification.len() < MIN_JUSTIFICATION {
            diag(format!(
                "suppression lacks a justification (≥ {MIN_JUSTIFICATION} chars required after the rule list)"
            ));
            ok = false;
        }
        if ok {
            out.push(Suppression {
                rules,
                line: c.line,
                col: c.col,
                text: c.text.trim().to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> Analysis {
        Analysis::build("mem.rs", src, FileClass::default())
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() { x(); }\n#[cfg(test)]\nmod tests {\n fn t() { y(); } }\nfn tail() {}";
        let a = analyze(src);
        let masked: Vec<(&str, bool)> = a
            .code
            .iter()
            .zip(&a.is_test)
            .map(|(t, &m)| (t.text.as_str(), m))
            .collect();
        assert!(masked.iter().any(|&(t, m)| t == "y" && m));
        assert!(masked.iter().any(|&(t, m)| t == "x" && !m));
        assert!(masked.iter().any(|&(t, m)| t == "tail" && !m));
    }

    #[test]
    fn test_attr_fn_is_masked_even_with_more_attrs() {
        let src = "#[test]\n#[ignore]\nfn check() { probe(); }\nfn live() { real(); }";
        let a = analyze(src);
        for (t, &m) in a.code.iter().zip(&a.is_test) {
            if t.text == "probe" {
                assert!(m);
            }
            if t.text == "real" {
                assert!(!m);
            }
        }
    }

    #[test]
    fn impl_type_resolution_handles_generics_and_traits() {
        let src = "impl<T: Clone> Foo<T> { fn a(&self) {} }\n\
                   impl Display for Bar { fn fmt(&self) {} }\n\
                   impl Baz { fn c(&self) {} }";
        let a = analyze(src);
        let ty_at = |name: &str| {
            let i = a.code.iter().position(|t| t.text == name).expect("token");
            a.impl_ty[i].clone()
        };
        assert_eq!(ty_at("a").as_deref(), Some("Foo"));
        assert_eq!(ty_at("fmt").as_deref(), Some("Bar"));
        assert_eq!(ty_at("c").as_deref(), Some("Baz"));
    }

    #[test]
    fn suppression_requires_justification() {
        let good = analyze("// mp-lint: allow(L2): bounded by vocabulary size < 2^32\nlet x = 1;");
        assert_eq!(good.suppressions.len(), 1);
        assert_eq!(good.suppressions[0].rules, vec!["L2"]);
        assert!(good.meta_diags.is_empty());
        assert!(good.suppressed("L2", 1));
        assert!(good.suppressed("L2", 2));
        assert!(!good.suppressed("L2", 3));
        assert!(!good.suppressed("L1", 2));

        let bad = analyze("// mp-lint: allow(L2)\nlet x = 1;");
        assert!(bad.suppressions.is_empty());
        assert_eq!(bad.meta_diags.len(), 1);
        assert_eq!(bad.meta_diags[0].rule, "A0");
    }

    #[test]
    fn suppression_rejects_unknown_rules_and_accepts_names() {
        let named = analyze("// mp-lint: allow(lossy-cast): count bounded by config max\nx;");
        assert_eq!(named.suppressions[0].rules, vec!["L2"]);
        let unknown = analyze("// mp-lint: allow(L99): because I said so\nx;");
        assert!(unknown.suppressions.is_empty());
        assert!(!unknown.meta_diags.is_empty());
    }
}
