//! L1 — float equality.
//!
//! Flags `==` / `!=` in non-test code when either adjacent operand token
//! is textual float evidence: a float literal (`0.0`, `1e-3`, `2f64`),
//! an `f64`/`f32` path segment, or a named float constant (`NAN`,
//! `INFINITY`, `NEG_INFINITY`).
//!
//! Why: every statistical quantity in this workspace (probabilities,
//! relevancies, expected correctness) is an `f64`; exact equality on
//! them silently stops holding after any re-ordering of arithmetic —
//! including the bit-identical parallel fan-out's *allowed* re-chunking.
//! Comparisons must go through the helpers in `mp_stats::float`
//! (`exact_zero` / `exact_one` for absorbing-state short-circuits,
//! `approx_eq` for tolerances, `total_cmp` for ordering).

use super::{diag_at, is_float_evidence};
use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;

const HINT: &str = "compare via mp_stats::float (approx_eq / exact_zero / exact_one) \
                    or an explicit total order (f64::total_cmp)";

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in a.code.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") || a.is_test[i] {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &a.code[p]);
        let next = a.code.get(i + 1);
        let float_side = prev.is_some_and(is_float_evidence) || next.is_some_and(is_float_evidence);
        if float_side {
            out.push(diag_at(
                a,
                "L1",
                i,
                format!("float `{}` comparison in non-test code", t.text),
                HINT,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l1_lines(src: &str) -> Vec<u32> {
        let a = Analysis::build("f.rs", src, FileClass::default());
        run_rules(&a)
            .into_iter()
            .filter(|d| d.rule == "L1")
            .map(|d| d.line)
            .collect()
    }

    #[test]
    fn flags_literal_comparisons_on_either_side() {
        assert_eq!(l1_lines("fn f(a: f64) -> bool { a == 1.0 }"), vec![1]);
        assert_eq!(l1_lines("fn f(a: f64) -> bool { 0.0 != a }"), vec![1]);
        assert_eq!(
            l1_lines("fn f(x: f64) -> bool { x.mean() == 0.5 }"),
            vec![1]
        );
    }

    #[test]
    fn flags_float_constants_and_paths() {
        assert_eq!(l1_lines("fn f(a: f64) -> bool { a == f64::NAN }"), vec![1]);
        assert_eq!(
            l1_lines("fn f(a: f32) -> bool { a == f32::INFINITY }"),
            vec![1]
        );
    }

    #[test]
    fn ignores_int_comparisons_and_test_code() {
        assert!(l1_lines("fn f(a: u32) -> bool { a == 1 }").is_empty());
        assert!(l1_lines("#[cfg(test)]\nmod t { fn f(a: f64) -> bool { a == 1.0 } }").is_empty());
        assert!(l1_lines("#[test]\nfn t() { assert!(x == 1.0); }").is_empty());
    }

    #[test]
    fn ignores_comments_and_strings() {
        assert!(l1_lines("// a == 1.0 in prose\nfn f() {}").is_empty());
        assert!(l1_lines("fn f() -> &'static str { \"p == 1.0\" }").is_empty());
    }

    #[test]
    fn suppression_with_justification_silences() {
        let src = "fn f(a: f64) -> bool {\n\
                   // mp-lint: allow(L1): exact sentinel propagated unchanged from config\n\
                   a == 1.0\n}";
        assert!(l1_lines(src).is_empty());
    }
}
