//! L13 — ambient nondeterminism sources in deterministic-contract
//! crates.
//!
//! `stats`, `core`, `index`, and `hidden` promise bit-identical output
//! as a pure function of (inputs, seed) — the property the equivalence
//! harness and the twin-replay tests pin, and the one PR 6's
//! schedule-dependent shared RNG stream silently broke. The compiler
//! does not know about that contract, so any ambient source sneaks in
//! type-checked: a wall clock read, an environment variable, a hasher
//! seeded per-process, a thread id. Each of those is a hidden input
//! that varies across runs.
//!
//! In files classified `l13_deterministic` ([`crate::context::
//! DETERMINISTIC_CRATES`]' `src/`), outside test code and `use`
//! declarations, the rule flags: `Instant::now`, any `SystemTime` use,
//! `thread::current` (id-keying), `std::env::var`/`var_os`, and
//! `RandomState` (the per-process hasher seed behind the PR 4
//! hash-order bug). Timing belongs in `obs` (feature-gated off the
//! result path); configuration belongs in explicit config structs; the
//! one sanctioned reader (`core::par`'s worker-count env override,
//! which cannot affect results by the pool's own contract) carries an
//! `allow(L13)` justification saying exactly that.

use super::diag_at;
use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;

const HINT: &str = "deterministic crates compute results from (inputs, seed) only: \
                    thread the value in explicitly, move timing behind the obs \
                    feature, or justify with `// mp-lint: allow(L13): <why results \
                    cannot depend on it>`";

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    if !a.class.l13_deterministic {
        return Vec::new();
    }
    let code = &a.code;
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident
            || a.is_test[i]
            || a.syntax.use_mask.get(i).copied().unwrap_or(false)
        {
            continue;
        }
        let next_is = |off: usize, s: &str| code.get(i + off).is_some_and(|n| n.text == s);
        let what = match t.text.as_str() {
            // Any SystemTime / RandomState mention is already a design
            // smell here, not just the call.
            "SystemTime" => "`SystemTime` (wall clock)",
            "RandomState" => "`RandomState` (per-process hasher seed)",
            "Instant" if next_is(1, "::") && next_is(2, "now") => "`Instant::now` (wall clock)",
            "thread" if next_is(1, "::") && next_is(2, "current") => {
                "`thread::current` (schedule-dependent identity)"
            }
            "var" | "var_os" if i >= 2 && code[i - 1].text == "::" && code[i - 2].text == "env" => {
                "`env::var` (ambient configuration)"
            }
            _ => continue,
        };
        out.push(diag_at(
            a,
            "L13",
            i,
            format!("{what} in a deterministic-contract crate"),
            HINT,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l13_count(src: &str, deterministic: bool) -> usize {
        let class = FileClass {
            l13_deterministic: deterministic,
            ..FileClass::default()
        };
        let a = Analysis::build("f.rs", src, class);
        run_rules(&a).iter().filter(|d| d.rule == "L13").count()
    }

    #[test]
    fn flags_every_ambient_source() {
        assert_eq!(l13_count("fn f() { let t = Instant::now(); }", true), 1);
        assert_eq!(l13_count("fn f() { let t = SystemTime::now(); }", true), 1);
        assert_eq!(
            l13_count("fn f() { let id = std::thread::current().id(); }", true),
            1
        );
        assert_eq!(
            l13_count("fn f() { let v = std::env::var(\"X\"); }", true),
            1
        );
        assert_eq!(
            l13_count("fn f() -> HashMap<u32, u32, RandomState> { todo() }", true),
            1
        );
    }

    #[test]
    fn uses_tests_and_non_deterministic_crates_are_exempt() {
        assert_eq!(l13_count("use std::time::SystemTime;", true), 0);
        assert_eq!(
            l13_count(
                "#[cfg(test)]\nmod t { fn f() { let t = Instant::now(); } }",
                true
            ),
            0
        );
        assert_eq!(l13_count("fn f() { let t = Instant::now(); }", false), 0);
        // `Instant` as a passed-in value is fine — the *source* is now().
        assert_eq!(l13_count("fn f(t: Instant) -> Instant { t }", true), 0);
        // Other `thread::` items (e.g. yield hints) are not identity reads.
        assert_eq!(l13_count("fn f() { std::thread::yield_now(); }", true), 0);
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "// mp-lint: allow(L13): worker count cannot change results (pool contract)\n\
                   fn f() { let v = std::env::var(\"MP_PAR\"); }";
        assert_eq!(l13_count(src, true), 0);
    }
}
