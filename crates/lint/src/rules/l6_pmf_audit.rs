//! L6 — pmf-constructor audit.
//!
//! Every non-test function that *returns a distribution by value* —
//! `Discrete`, `ErrorDistribution`, `PoissonBinomial`,
//! `IncrementalPoissonBinomial`, plain or wrapped
//! (`Option<Discrete>`, `Result<Discrete, _>`, `Vec<Discrete>`,
//! `-> Self` inside an `impl` of one of these) — must contain a
//! normalization `debug_assert` in its body: `debug_assert!(…)` /
//! `debug_assert_…!(…)` or a call to the shared
//! `debug_assert_normalized()` helpers in `mp-stats`.
//!
//! Why: the paper's estimates (`E[Cor(DBk)]`, Eq. 5–6) are only
//! meaningful over *normalized* pmfs. A constructor that silently
//! produces mass ≠ 1 corrupts every downstream expectation while still
//! returning perfectly plausible numbers — the exact failure mode a
//! statistical system cannot detect from its outputs. The `debug_assert`
//! runs in tests and in the CI `debug-assertions` job, and vanishes
//! from release builds.
//!
//! Accessors returning references (`-> &Discrete`, `-> &[Discrete]`)
//! are exempt: they hand out an already-audited object.
//!
//! The fn-item structure (name, return-type span, body span) comes
//! from the shared syntax-lite layer ([`crate::syntax::FileSyntax`]) —
//! this rule is purely the *policy* over it.

use super::diag_at;
use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;
use crate::syntax::FnDecl;

/// Types whose by-value constructors are audited.
pub const DIST_TYPES: &[&str] = &[
    "Discrete",
    "ErrorDistribution",
    "PoissonBinomial",
    "IncrementalPoissonBinomial",
];

const HINT: &str = "call .debug_assert_normalized() on the value before returning \
                    (or add an explicit normalization debug_assert!)";

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &a.syntax.fns {
        if a.is_test[f.fn_idx] {
            continue;
        }
        if returns_distribution(a, f) && !body_has_debug_assert(a, f) {
            out.push(diag_at(
                a,
                "L6",
                f.name_idx,
                format!(
                    "`{}` returns a distribution but has no normalization debug_assert",
                    f.name
                ),
                HINT,
            ));
        }
    }
    out
}

fn returns_distribution(a: &Analysis, f: &FnDecl) -> bool {
    let ret = &a.code[f.ret.0..f.ret.1];
    if ret.is_empty() {
        return false;
    }
    // Reference returns hand out audited objects; skip.
    if ret.iter().any(|t| t.text == "&") {
        return false;
    }
    let impl_ty = f.impl_ty.as_deref();
    ret.iter().any(|t| {
        t.kind == TokKind::Ident
            && (DIST_TYPES.contains(&t.text.as_str())
                || (t.text == "Self" && impl_ty.is_some_and(|ty| DIST_TYPES.contains(&ty))))
    })
}

fn body_has_debug_assert(a: &Analysis, f: &FnDecl) -> bool {
    let Some((open, close)) = f.body else {
        return true; // trait signature without body: nothing to audit
    };
    a.code[open..=close.min(a.code.len() - 1)]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text.starts_with("debug_assert"))
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l6(src: &str) -> Vec<String> {
        let a = Analysis::build("f.rs", src, FileClass::default());
        run_rules(&a)
            .into_iter()
            .filter(|d| d.rule == "L6")
            .map(|d| d.message)
            .collect()
    }

    #[test]
    fn flags_unaudited_constructors_plain_and_wrapped() {
        assert_eq!(l6("fn mk() -> Discrete { build() }").len(), 1);
        assert_eq!(l6("fn mk() -> Option<Discrete> { build() }").len(), 1);
        assert_eq!(l6("fn mk() -> Result<Discrete, E> { build() }").len(), 1);
        assert_eq!(l6("fn mk() -> Vec<Discrete> { build() }").len(), 1);
    }

    #[test]
    fn accepts_debug_asserted_bodies() {
        assert!(
            l6("fn mk() -> Discrete { let d = build(); d.debug_assert_normalized(); d }")
                .is_empty()
        );
        assert!(l6("fn mk() -> Discrete { let d = build(); debug_assert!(d.ok()); d }").is_empty());
    }

    #[test]
    fn resolves_self_in_dist_impls_only() {
        let flagged = l6("impl Discrete { fn mk() -> Self { Self { p: vec![] } } }");
        assert_eq!(flagged.len(), 1);
        assert!(flagged[0].contains("mk"));
        assert!(l6("impl RdState { fn mk() -> Self { Self {} } }").is_empty());
    }

    #[test]
    fn reference_returns_and_other_types_are_exempt() {
        assert!(l6("impl Holder { fn rds(&self) -> &[Discrete] { &self.rds } }").is_empty());
        assert!(l6("fn mean() -> f64 { 0.5 }").is_empty());
        assert!(l6("#[cfg(test)]\nmod t { fn mk() -> Discrete { build() } }").is_empty());
    }
}
