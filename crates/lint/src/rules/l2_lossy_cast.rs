//! L2 — lossy `as` casts on counts and indices.
//!
//! Two triggers, both in non-test code:
//!
//! 1. `as` into a type that is narrower than the workspace's canonical
//!    count/index widths (`u64`/`usize`): `u8 u16 u32 i8 i16 i32 f32`.
//!    These truncate or wrap silently — `DocId(x as u32)` on a corpus
//!    past 4 Gi documents corrupts every downstream distribution
//!    without a panic.
//! 2. `as` into a wide integer (`u64 i64 u128 i128 usize isize`) when
//!    the operand is textually float-valued: a float literal, or a call
//!    to a known float-producing method (`round`, `floor`, `sqrt`, …).
//!    `f64 as usize` saturates and drops the fraction silently.
//!
//! Sanctioned replacements: `T::try_from(x).expect("<why it fits>")`
//! for int→int, widening the variable, or the checked rounding helpers
//! in `mp_stats::float` (`round_u32`, `round_u64`) for float→int.
//!
//! Int→`f64` casts are allowed: every count in this workspace is far
//! below 2^53, and estimates/relevancies are defined as `f64` by the
//! paper's model.

use super::{diag_at, matching_open_paren};
use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;

const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
const WIDE_INT: &[&str] = &["u64", "i64", "u128", "i128", "usize", "isize"];
const FLOAT_METHODS: &[&str] = &[
    "round", "ceil", "floor", "trunc", "sqrt", "powf", "powi", "exp", "ln", "log10", "log2",
];

const HINT: &str = "use T::try_from(x).expect(\"<why it fits>\"), widen the type, \
                    or mp_stats::float::round_u32/round_u64 for rounded floats";

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in a.code.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || a.is_test[i] {
            continue;
        }
        let Some(target) = a.code.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident {
            continue;
        }
        let ty = target.text.as_str();
        if NARROW.contains(&ty) {
            out.push(diag_at(
                a,
                "L2",
                i,
                format!("potentially lossy `as {ty}` cast (narrower than the canonical count/index width)"),
                HINT,
            ));
        } else if WIDE_INT.contains(&ty) && operand_is_floaty(a, i) {
            out.push(diag_at(
                a,
                "L2",
                i,
                format!("float-to-integer `as {ty}` cast drops the fraction silently"),
                HINT,
            ));
        }
    }
    out
}

/// Textual evidence that the expression before `as` produces a float:
/// a float literal, or `… .m(…)` where `m` is a known float method.
fn operand_is_floaty(a: &Analysis, as_idx: usize) -> bool {
    let Some(prev_idx) = as_idx.checked_sub(1) else {
        return false;
    };
    let prev = &a.code[prev_idx];
    if prev.kind == TokKind::Float {
        return true;
    }
    if prev.kind == TokKind::Punct && prev.text == ")" {
        if let Some(open) = matching_open_paren(&a.code, prev_idx) {
            if let Some(callee_idx) = open.checked_sub(1) {
                let callee = &a.code[callee_idx];
                return callee.kind == TokKind::Ident
                    && FLOAT_METHODS.contains(&callee.text.as_str());
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l2_count(src: &str) -> usize {
        let a = Analysis::build("f.rs", src, FileClass::default());
        run_rules(&a).iter().filter(|d| d.rule == "L2").count()
    }

    #[test]
    fn flags_narrowing_int_casts() {
        assert_eq!(l2_count("fn f(x: usize) -> u32 { x as u32 }"), 1);
        assert_eq!(l2_count("fn f(x: u64) -> u8 { x as u8 }"), 1);
        assert_eq!(l2_count("fn f(x: f64) -> f32 { x as f32 }"), 1);
    }

    #[test]
    fn flags_float_to_wide_int() {
        assert_eq!(l2_count("fn f() -> usize { 2.5 as usize }"), 1);
        assert_eq!(l2_count("fn f(x: f64) -> i64 { x.round() as i64 }"), 1);
        assert_eq!(
            l2_count("fn f(x: f64) -> u64 { (x * 2.0).floor() as u64 }"),
            1
        );
    }

    #[test]
    fn allows_widening_and_float_targets() {
        assert_eq!(l2_count("fn f(x: u32) -> u64 { x as u64 }"), 0);
        assert_eq!(l2_count("fn f(x: usize) -> f64 { x as f64 }"), 0);
        assert_eq!(l2_count("fn f(x: u32) -> usize { x as usize }"), 0);
    }

    #[test]
    fn ignores_test_code_and_use_aliases() {
        assert_eq!(
            l2_count("#[cfg(test)]\nmod t { fn f(x: u64) -> u32 { x as u32 } }"),
            0
        );
        assert_eq!(l2_count("use std::io::Write as W;"), 0);
    }
}
