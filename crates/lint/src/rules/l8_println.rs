//! L8 — `println!` / `eprintln!` (and friends) in library crates.
//!
//! Library crates compute; they do not talk to the terminal. A stray
//! `println!` deep in the engine corrupts the CLI's machine-readable
//! stdout, bypasses the `--obs` observability channel, and costs a
//! formatting + syscall on what may be a hot path. Outside
//! `#[cfg(test)]`, any `println!`, `print!`, `eprintln!`, `eprint!`, or
//! `dbg!` invocation in a library crate (see LINT.md for the list) is
//! flagged. Binary entry points (`src/main.rs`, `src/bin/`), the
//! CLI/bench crates, tests, benches, and examples are exempt —
//! printing is their job. `write!`/`writeln!` to an explicit sink are
//! always fine.

use super::diag_at;
use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;

const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

const HINT: &str = "return the text to the caller, write into a provided \
                    `fmt::Write`/`io::Write` sink, or record an mp-obs \
                    counter/span instead of printing";

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    if !a.class.l8_library {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in a.code.iter().enumerate() {
        if t.kind != TokKind::Ident || a.is_test[i] || !PRINT_MACROS.contains(&t.text.as_str()) {
            continue;
        }
        // A macro invocation: the ident is immediately followed by `!`
        // (the lexer only fuses `!` into `!=`, never into `!(`).
        if a.code.get(i + 1).is_some_and(|n| n.text == "!") {
            out.push(diag_at(
                a,
                "L8",
                i,
                format!("`{}!` in library code", t.text),
                HINT,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l8_count(src: &str, library: bool) -> usize {
        let class = FileClass {
            l8_library: library,
            ..FileClass::default()
        };
        let a = Analysis::build("f.rs", src, class);
        run_rules(&a).iter().filter(|d| d.rule == "L8").count()
    }

    #[test]
    fn flags_every_print_macro_variant() {
        assert_eq!(l8_count("fn f() { println!(\"x\"); }", true), 1);
        assert_eq!(l8_count("fn f() { print!(\"x\"); }", true), 1);
        assert_eq!(l8_count("fn f() { eprintln!(\"x = {x}\"); }", true), 1);
        assert_eq!(l8_count("fn f() { eprint!(\"x\"); }", true), 1);
        assert_eq!(l8_count("fn f() { dbg!(x); }", true), 1);
        assert_eq!(l8_count("fn f() { std::println!(\"x\"); }", true), 1);
    }

    #[test]
    fn allows_sinks_tests_and_non_library_files() {
        assert_eq!(l8_count("fn f() { writeln!(out, \"x\")?; }", true), 0);
        assert_eq!(l8_count("fn f() { write!(out, \"x\")?; }", true), 0);
        assert_eq!(
            l8_count("#[cfg(test)]\nmod t { fn f() { println!(\"x\"); } }", true),
            0
        );
        assert_eq!(l8_count("fn f() { println!(\"x\"); }", false), 0);
        // Plain identifiers that merely share the name are not macros.
        assert_eq!(l8_count("fn f() { self.print(); let print = 1; }", true), 0);
        // `!=` must not be mistaken for a macro bang.
        assert_eq!(l8_count("fn f(print: u8) { if print != 0 {} }", true), 0);
    }
}
