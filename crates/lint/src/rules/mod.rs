//! The rule registry and shared token-walking helpers.
//!
//! Every rule is a pure function from a per-file [`Analysis`] to a list
//! of [`Diagnostic`]s. Rules are token-level heuristics: they trade
//! full type knowledge for zero dependencies and total predictability —
//! each rule's exact trigger conditions are documented in LINT.md so a
//! reader can always answer "why did/didn't this fire?".

mod l10_hash_order;
mod l11_atomic;
mod l13_nondet;
mod l1_float_eq;
mod l2_lossy_cast;
mod l3_unwrap;
mod l4_thread;
mod l5_cfg_parallel;
mod l6_pmf_audit;
mod l7_todo;
mod l8_println;
mod l9_hot_mutex;

use crate::context::Analysis;
use crate::diagnostics::{Diagnostic, Level};
use crate::graph::WorkspaceGraph;
use crate::lexer::{TokKind, Token};

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Canonical id (`L1` … `L13`, `A0`/`A1`).
    pub id: &'static str,
    /// Human name, also accepted in `allow(...)`.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Default severity (before `--deny-all`).
    pub default_level: Level,
}

/// Every rule this linter knows, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "L1",
        name: "float-eq",
        summary: "float `==`/`!=` in non-test code",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "L2",
        name: "lossy-cast",
        summary: "lossy `as` cast on count/index/float values",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "L3",
        name: "unwrap-expect",
        summary: "`unwrap()`/unjustified `expect()` in library crates",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "L4",
        name: "thread-spawn",
        summary: "thread spawn/scope outside mp-core::par",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "L5",
        name: "cfg-parallel",
        summary: "`cfg(feature = \"parallel\")` item without serial fallback",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "L6",
        name: "pmf-audit",
        summary: "distribution constructor without normalization debug_assert",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "L7",
        name: "todo-ref",
        summary: "TODO/FIXME without an issue reference",
        default_level: Level::Warn,
    },
    RuleInfo {
        id: "L8",
        name: "no-println-in-lib",
        summary: "`println!`-family macro in library crate code",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "L9",
        name: "hot-path-lock",
        summary: "`Mutex`/`RwLock`/`Condvar` in a serve-hot-path module",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "L10",
        name: "hash-order",
        summary: "iteration over a HashMap/HashSet in library code",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "L11",
        name: "atomic-ordering",
        summary: "Relaxed outside counter modules / unpaired acquire-release",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "L12",
        name: "lock-order",
        summary: "lock-acquisition cycle (potential deadlock)",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "L13",
        name: "nondet-source",
        summary: "ambient nondeterminism source in a deterministic crate",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "A0",
        name: "suppression",
        summary: "malformed or unjustified mp-lint suppression comment",
        default_level: Level::Deny,
    },
    RuleInfo {
        id: "A1",
        name: "stale-suppression",
        summary: "allow(…) comment matching no finding on its covered lines",
        default_level: Level::Warn,
    },
];

/// Looks a rule up by id (`L2`) or name (`lossy-cast`), case-insensitive.
pub fn rule_by_name(s: &str) -> Option<&'static RuleInfo> {
    RULES
        .iter()
        .find(|r| r.id.eq_ignore_ascii_case(s) || r.name.eq_ignore_ascii_case(s))
}

pub(crate) fn level_of(id: &str) -> Level {
    RULES
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.default_level)
        .unwrap_or(Level::Deny)
}

/// Runs every per-file rule on one analyzed file, returning the *raw*
/// (pre-suppression) findings. The workspace driver adds graph-derived
/// findings (L12) before handing the combined list to [`finalize`] —
/// A1 staleness must be judged against everything a suppression could
/// legitimately cover.
pub(crate) fn per_file_rules(a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(l1_float_eq::check(a));
    out.extend(l2_lossy_cast::check(a));
    out.extend(l3_unwrap::check(a));
    out.extend(l4_thread::check(a));
    out.extend(l5_cfg_parallel::check(a));
    out.extend(l6_pmf_audit::check(a));
    out.extend(l7_todo::check(a));
    out.extend(l8_println::check(a));
    out.extend(l9_hot_mutex::check(a));
    out.extend(l10_hash_order::check(a));
    out.extend(l11_atomic::check(a));
    out.extend(l13_nondet::check(a));
    out
}

/// Applies suppression comments to the raw findings, flags stale
/// suppressions (A1), appends the context's own meta diagnostics (A0 —
/// neither is suppressible: they complain about the suppressions
/// themselves), and sorts.
pub(crate) fn finalize(a: &Analysis, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = raw
        .iter()
        .filter(|d| !a.suppressed(d.rule, d.line))
        .cloned()
        .collect();
    for s in &a.suppressions {
        let stale: Vec<&str> = s
            .rules
            .iter()
            .filter(|r| {
                !raw.iter()
                    .any(|d| &d.rule == *r && (d.line == s.line || d.line == s.line + 1))
            })
            .copied()
            .collect();
        if !stale.is_empty() {
            out.push(Diagnostic {
                rule: "A1",
                level: level_of("A1"),
                path: a.path.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "stale suppression: allow({}) matches no finding on its covered lines",
                    stale.join(", ")
                ),
                snippet: s.text.clone(),
                hint: "delete the dead allow (or the dead rule names from its list) — \
                       the allow-list is only an audit while every entry is live"
                    .to_string(),
            });
        }
    }
    out.extend(a.meta_diags.iter().cloned());
    out.sort_by_key(|d| (d.line, d.col, d.rule));
    out
}

/// Runs the full pipeline on one analyzed file in isolation: per-file
/// rules, a single-file workspace graph (so L12 sees intra-file
/// cycles), suppression handling, and the meta rules. Fixtures and
/// unit tests use this; `lint_workspace` runs the same pipeline with a
/// whole-workspace graph instead.
pub fn run_rules(a: &Analysis) -> Vec<Diagnostic> {
    let mut raw = per_file_rules(a);
    let graph = WorkspaceGraph::build(std::slice::from_ref(a));
    raw.extend(graph.diags_for(&a.path));
    finalize(a, raw)
}

/// Builds a diagnostic anchored at code token `idx`.
pub(crate) fn diag_at(
    a: &Analysis,
    rule: &'static str,
    idx: usize,
    message: String,
    hint: &str,
) -> Diagnostic {
    let t = &a.code[idx];
    Diagnostic {
        rule,
        level: level_of(rule),
        path: a.path.clone(),
        line: t.line,
        col: t.col,
        message,
        snippet: snippet_around(a, idx),
        hint: hint.to_string(),
    }
}

/// Reconstructs the offending line's neighborhood from tokens on the
/// same source line as `idx` (±4 tokens).
pub(crate) fn snippet_around(a: &Analysis, idx: usize) -> String {
    let line = a.code[idx].line;
    let lo = idx.saturating_sub(4);
    let hi = (idx + 5).min(a.code.len());
    let parts: Vec<&str> = a.code[lo..hi]
        .iter()
        .filter(|t| t.line == line)
        .map(|t| t.text.as_str())
        .collect();
    parts.join(" ")
}

/// True when the token is textual evidence of a float operand.
pub(crate) fn is_float_evidence(t: &Token) -> bool {
    match t.kind {
        TokKind::Float => true,
        TokKind::Ident => matches!(
            t.text.as_str(),
            "NAN" | "INFINITY" | "NEG_INFINITY" | "f64" | "f32"
        ),
        _ => false,
    }
}

/// Index of the `(` matching the `)` at `close`, scanning backward.
pub(crate) fn matching_open_paren(code: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for i in (0..=close).rev() {
        if code[i].kind == TokKind::Punct {
            match code[i].text.as_str() {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
    }
    None
}
