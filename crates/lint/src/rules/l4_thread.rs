//! L4 — thread creation outside `mp-core::par`.
//!
//! The engine's determinism contract says results are bit-identical
//! regardless of thread count, and that is only auditable if every
//! fork-join in the workspace goes through the one order-preserving
//! primitive (`mp_core::par::par_map_indexed`). Any direct
//! `thread::spawn` / `thread::scope` / `thread::Builder` elsewhere in
//! non-test code is flagged; `crates/core/src/par.rs` itself is exempt
//! via the walker's file classification.

use super::diag_at;
use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;

const SPAWNERS: &[&str] = &["spawn", "scope", "Builder"];

const HINT: &str = "route the fan-out through mp_core::par::par_map_indexed \
                    (order-preserving, feature-gated, bit-identical serial fallback)";

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    if a.class.l4_exempt {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in a.code.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "thread" || a.is_test[i] {
            continue;
        }
        let path_sep = a.code.get(i + 1).is_some_and(|n| n.text == "::");
        let Some(member) = a.code.get(i + 2) else {
            continue;
        };
        if path_sep && SPAWNERS.contains(&member.text.as_str()) {
            out.push(diag_at(
                a,
                "L4",
                i,
                format!("`thread::{}` outside mp-core::par", member.text),
                HINT,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l4_count(src: &str, exempt: bool) -> usize {
        let class = FileClass {
            l4_exempt: exempt,
            ..FileClass::default()
        };
        let a = Analysis::build("f.rs", src, class);
        run_rules(&a).iter().filter(|d| d.rule == "L4").count()
    }

    #[test]
    fn flags_spawn_scope_and_builder() {
        assert_eq!(l4_count("fn f() { std::thread::spawn(|| {}); }", false), 1);
        assert_eq!(l4_count("fn f() { thread::scope(|s| {}); }", false), 1);
        assert_eq!(l4_count("fn f() { thread::Builder::new(); }", false), 1);
    }

    #[test]
    fn allows_par_rs_tests_and_non_spawning_thread_apis() {
        assert_eq!(l4_count("fn f() { std::thread::spawn(|| {}); }", true), 0);
        assert_eq!(
            l4_count(
                "#[cfg(test)]\nmod t { fn f() { std::thread::spawn(|| {}); } }",
                false
            ),
            0
        );
        assert_eq!(
            l4_count("fn f() { std::thread::available_parallelism(); }", false),
            0
        );
    }
}
