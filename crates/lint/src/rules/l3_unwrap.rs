//! L3 — `unwrap()` / unjustified `expect()` in library crates.
//!
//! Library crates (see LINT.md for the list) sit under the probing
//! engine's hot path; a panic there takes down a whole evaluation run
//! with no context. Outside `#[cfg(test)]`:
//!
//! * `.unwrap()` is always flagged — propagate a `Result`, or use
//!   `.expect("…")` with a message explaining why failure is impossible.
//! * `.expect(…)` is flagged unless its argument is a string literal of
//!   at least [`MIN_EXPECT_MESSAGE`] characters (a real justification,
//!   not `"oops"`), or a `format!` invocation (dynamic but inherently
//!   message-bearing).
//!
//! `unwrap_or`, `unwrap_or_else`, `unwrap_or_default` are fine — they
//! do not panic.

use super::diag_at;
use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;

/// Minimum length of an `expect` message that counts as a
/// justification.
pub const MIN_EXPECT_MESSAGE: usize = 10;

const HINT: &str = "propagate a Result, or use .expect(\"<why this cannot fail>\") \
                    with a real justification";

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    if !a.class.l3_library {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in a.code.iter().enumerate() {
        if t.kind != TokKind::Ident || a.is_test[i] {
            continue;
        }
        let after_dot = i.checked_sub(1).is_some_and(|p| a.code[p].text == ".");
        let called = a.code.get(i + 1).is_some_and(|n| n.text == "(");
        if !(after_dot && called) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" => out.push(diag_at(
                a,
                "L3",
                i,
                "`.unwrap()` in library code".to_string(),
                HINT,
            )),
            "expect" if !expect_is_justified(a, i + 1) => {
                out.push(diag_at(
                    a,
                    "L3",
                    i,
                    format!(
                        "`.expect(…)` without a justification message \
                         (string literal of ≥ {MIN_EXPECT_MESSAGE} chars)"
                    ),
                    HINT,
                ));
            }
            _ => {}
        }
    }
    out
}

/// Inspects the first argument token after `expect(`.
fn expect_is_justified(a: &Analysis, open_paren: usize) -> bool {
    let mut j = open_paren + 1;
    // Skip a leading borrow (`&format!(…)`).
    if a.code.get(j).is_some_and(|t| t.text == "&") {
        j += 1;
    }
    match a.code.get(j) {
        Some(t) if t.kind == TokKind::Str => t
            .str_content()
            .is_some_and(|s| s.len() >= MIN_EXPECT_MESSAGE),
        Some(t) if t.kind == TokKind::Ident && t.text == "format" => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l3_count(src: &str, library: bool) -> usize {
        let class = FileClass {
            l3_library: library,
            ..FileClass::default()
        };
        let a = Analysis::build("f.rs", src, class);
        run_rules(&a).iter().filter(|d| d.rule == "L3").count()
    }

    #[test]
    fn flags_unwrap_and_bare_expect() {
        assert_eq!(l3_count("fn f() { x().unwrap(); }", true), 1);
        assert_eq!(l3_count("fn f() { x().expect(\"no\"); }", true), 1);
        assert_eq!(l3_count("fn f() { x().expect(msg); }", true), 1);
    }

    #[test]
    fn allows_justified_expect_and_non_panicking_unwraps() {
        assert_eq!(
            l3_count(
                "fn f() { x().expect(\"estimate floored, never zero\"); }",
                true
            ),
            0
        );
        assert_eq!(
            l3_count("fn f() { x().expect(&format!(\"db {i}\")); }", true),
            0
        );
        assert_eq!(l3_count("fn f() { x().unwrap_or(4); }", true), 0);
        assert_eq!(l3_count("fn f() { x().unwrap_or_default(); }", true), 0);
    }

    #[test]
    fn skips_tests_and_non_library_crates() {
        assert_eq!(
            l3_count("#[cfg(test)]\nmod t { fn f() { x().unwrap(); } }", true),
            0
        );
        assert_eq!(l3_count("fn f() { x().unwrap(); }", false), 0);
    }
}
