//! L9 — shared-lock primitives inside serve-hot-path modules.
//!
//! The cold serve path was de-contended by design: probe outcomes come
//! from a counter-keyed RNG stream, probe accounting from per-worker
//! shards, and counters from striped relaxed atomics — so a cold
//! request never takes a cross-worker lock per probe. A `Mutex`,
//! `RwLock`, or `Condvar` reappearing in one of those modules is how
//! that property silently erodes: one innocent-looking field turns
//! every worker into a convoy again and the scaling-efficiency guard
//! only catches it a bench run later.
//!
//! In files classified `l9_hot_path` (the worker-facing serving and
//! probe modules — see `walk::classify`), any `Mutex` / `RwLock` /
//! `Condvar` identifier outside test code and outside `use`
//! declarations is flagged. The sanctioned residual locks — the queue
//! handoff, response rendezvous, cache shards, dedup flight table, and
//! opt-in probe-log shards — each carry an `allow(L9)` comment whose
//! justification states why the lock is off the per-probe path or
//! effectively uncontended. That allow-list *is* the audit: adding a
//! lock means writing down why it is sound.

use super::diag_at;
use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;

const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar"];

const HINT: &str = "keep the per-probe path lock-free (per-worker shard, striped \
                    atomic, or counter-keyed stream), or justify the lock with \
                    `// mp-lint: allow(L9): <why it is off the hot path>`";

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    if !a.class.l9_hot_path {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in a.code.iter().enumerate() {
        // Import lines name the types without acquiring anything; the
        // syntax layer's `use`-declaration mask exempts them.
        if a.syntax.use_mask.get(i).copied().unwrap_or(false)
            || a.is_test[i]
            || t.kind != TokKind::Ident
        {
            continue;
        }
        if LOCK_TYPES.contains(&t.text.as_str()) {
            out.push(diag_at(
                a,
                "L9",
                i,
                format!("`{}` in a serve-hot-path module", t.text),
                HINT,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l9_count(src: &str, hot: bool) -> usize {
        let class = FileClass {
            l9_hot_path: hot,
            ..FileClass::default()
        };
        let a = Analysis::build("f.rs", src, class);
        run_rules(&a).iter().filter(|d| d.rule == "L9").count()
    }

    #[test]
    fn flags_every_lock_primitive() {
        assert_eq!(l9_count("struct S { m: Mutex<u64> }", true), 1);
        assert_eq!(l9_count("struct S { m: std::sync::RwLock<u64> }", true), 1);
        assert_eq!(l9_count("struct S { c: Condvar }", true), 1);
        assert_eq!(l9_count("fn f() { let m = Mutex::new(0); }", true), 1);
    }

    #[test]
    fn skips_imports_tests_and_cold_modules() {
        assert_eq!(l9_count("use std::sync::{Mutex, Condvar};", true), 0);
        assert_eq!(
            l9_count(
                "#[cfg(test)]\nmod t { fn f() { let m = Mutex::new(0); } }",
                true
            ),
            0
        );
        assert_eq!(l9_count("struct S { m: Mutex<u64> }", false), 0);
        // Guard types share a prefix but are not acquisitions-by-type.
        assert_eq!(l9_count("fn f(g: MutexGuard<u64>) {}", true), 0);
        // A `use` inside a body ends at its `;` — code after it fires.
        assert_eq!(
            l9_count(
                "fn f() { use std::sync::Mutex; let m = Mutex::new(0); }",
                true
            ),
            1
        );
    }

    #[test]
    fn allow_comment_suppresses_one_site() {
        let src = "// mp-lint: allow(L9): O(1) handoff, never held across a probe\n\
                   struct S { m: Mutex<u64>,\n c: Condvar }";
        assert_eq!(l9_count(src, true), 1, "only the covered line is allowed");
        let both = "// mp-lint: allow(L9): O(1) handoff, never held across a probe\n\
                    struct S { m: Mutex<u64> }";
        assert_eq!(l9_count(both, true), 0);
    }
}
