//! L10 — iteration over hash-ordered collections in library code.
//!
//! The PR 4 incident, as a lint: `cosine_topk` accumulated scores by
//! iterating a `HashMap`, so float rounding depended on `RandomState`'s
//! per-process seed and the "same" query returned different tail ranks
//! across runs. Every number this workspace serves is an estimate whose
//! reproducibility the equivalence harness pins — iteration order that
//! changes per process is exactly the nondeterminism that harness
//! exists to catch, except it only catches it a run later.
//!
//! In library-crate code (`l10_library`, the shared [`crate::context::
//! LIBRARY_CRATES`] list), iterating a binding the syntax layer typed
//! as `HashMap`/`HashSet` — `for … in &map`, `.iter()`, `.keys()`,
//! `.values()`, `.drain()`, `.into_iter()` — is flagged unless the
//! statement visibly restores an order: it collects into a `BTreeMap`/
//! `BTreeSet` (annotation or turbofish), or the very next statement
//! sorts the binding it produced. Anything else needs an
//! `// mp-lint: allow(L10): <why order cannot matter>` stating the
//! commutativity argument.

use super::diag_at;
use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::syntax::{simple_receiver_name, stmt_end, stmt_start};

/// Methods that yield the collection's elements in hash order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Sort calls that restore a total order on the collected result.
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

const HINT: &str = "hash iteration order differs per process (seeded RandomState): \
                    collect into a BTreeMap/BTreeSet, sort the result before it \
                    feeds floats or output, or justify with `// mp-lint: \
                    allow(L10): <why order cannot matter>`";

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    if !a.class.l10_library || a.syntax.hash_names.is_empty() {
        return Vec::new();
    }
    let code = &a.code;
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if a.is_test[i] {
            continue;
        }
        // `map.iter()` / `self.df.keys()` / `acc.drain()` …
        if t.text == "."
            && t.kind == TokKind::Punct
            && code
                .get(i + 1)
                .is_some_and(|m| HASH_ITER_METHODS.contains(&m.text.as_str()))
            && code.get(i + 2).is_some_and(|p| p.text == "(")
        {
            if let Some(name) = simple_receiver_name(code, i) {
                if a.syntax.hash_names.contains(&name) && !order_restored(a, i) {
                    out.push(diag_at(
                        a,
                        "L10",
                        i + 1,
                        format!("hash-order iteration: `{name}.{}()`", code[i + 1].text),
                        HINT,
                    ));
                }
            }
        }
        // `for … in [&][mut] map {` / `for … in &self.df {`.
        if t.kind == TokKind::Ident && t.text == "for" {
            if let Some(name_idx) = for_loop_hash_subject(a, i) {
                if !order_restored(a, name_idx) {
                    out.push(diag_at(
                        a,
                        "L10",
                        name_idx,
                        format!("hash-order iteration: `for … in {}`", code[name_idx].text),
                        HINT,
                    ));
                }
            }
        }
    }
    out
}

/// For a `for` keyword at `i`: if the loop subject is a simple
/// (possibly `&`/`mut`-prefixed) path ending in a hash-typed name —
/// with no method call that would already be handled by the `.iter()`
/// arm — returns the index of that name token.
fn for_loop_hash_subject(a: &Analysis, i: usize) -> Option<usize> {
    let code = &a.code;
    // Find the pattern's `in` at bracket depth 0.
    let mut j = i + 1;
    let mut depth = 0i32;
    let in_idx = loop {
        let t = code.get(j)?;
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 && t.kind == TokKind::Ident => break j,
            "{" | ";" => return None,
            _ => {}
        }
        j += 1;
    };
    // Subject expression: `in` → body `{` at depth 0.
    let mut k = in_idx + 1;
    let mut expr: Vec<(usize, &Token)> = Vec::new();
    let mut depth = 0i32;
    loop {
        let t = code.get(k)?;
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            _ => {}
        }
        expr.push((k, t));
        k += 1;
    }
    // Strip reference/mutability prefixes, then require a pure
    // `ident (. ident | :: ident)*` path.
    let mut e = expr.as_slice();
    while e
        .first()
        .is_some_and(|(_, t)| matches!(t.text.as_str(), "&" | "&&" | "mut"))
    {
        e = &e[1..];
    }
    if e.is_empty() {
        return None;
    }
    for (pos, (_, t)) in e.iter().enumerate() {
        let ok = if pos % 2 == 0 {
            t.kind == TokKind::Ident
        } else {
            t.text == "." || t.text == "::"
        };
        if !ok {
            return None;
        }
    }
    let (last_idx, last) = *e.last()?;
    if last.kind == TokKind::Ident && a.syntax.hash_names.contains(&last.text) {
        Some(last_idx)
    } else {
        None
    }
}

/// True when the statement containing `idx` visibly restores an order:
/// it mentions `BTreeMap`/`BTreeSet` (a collect annotation or
/// turbofish), or it is a `let` binding whose very next statement sorts
/// the bound name.
fn order_restored(a: &Analysis, idx: usize) -> bool {
    let code = &a.code;
    let sstart = stmt_start(code, idx);
    let send = stmt_end(code, idx);
    if code[sstart..=send.min(code.len() - 1)]
        .iter()
        .any(|t| t.text == "BTreeMap" || t.text == "BTreeSet")
    {
        return true;
    }
    // `let [mut] b = …collect(); b.sort…();`
    let mut j = sstart;
    if code.get(j).is_none_or(|t| t.text != "let") {
        return false;
    }
    j += 1;
    if code.get(j).is_some_and(|t| t.text == "mut") {
        j += 1;
    }
    let Some(bound) = code.get(j).filter(|t| t.kind == TokKind::Ident) else {
        return false;
    };
    let nstart = send + 1;
    if nstart >= code.len() {
        return false;
    }
    let nend = stmt_end(code, nstart);
    code[nstart..=nend.min(code.len() - 1)].windows(3).any(|w| {
        w[0].text == bound.text && w[1].text == "." && SORT_METHODS.contains(&w[2].text.as_str())
    })
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l10_count(src: &str, library: bool) -> usize {
        let class = FileClass {
            l10_library: library,
            ..FileClass::default()
        };
        let a = Analysis::build("f.rs", src, class);
        run_rules(&a).iter().filter(|d| d.rule == "L10").count()
    }

    const DECL: &str = "struct S { df: HashMap<u32, u32> }\n";

    #[test]
    fn flags_method_iteration_and_for_loops_over_hash_types() {
        assert_eq!(
            l10_count(
                &format!("{DECL}fn f(s: &S) {{ for v in s.df.values() {{ use_it(v); }} }}"),
                true
            ),
            1
        );
        assert_eq!(
            l10_count(
                &format!("{DECL}impl S {{ fn f(&self) {{ for kv in &self.df {{ go(kv); }} }} }}"),
                true
            ),
            1
        );
        assert_eq!(
            l10_count(
                "fn f(acc: HashMap<u32, f64>) { for (d, x) in acc { push(d, x); } }",
                true
            ),
            1
        );
        assert_eq!(
            l10_count(
                &format!("{DECL}fn f(s: &S) {{ let ks = s.df.keys().count(); }}"),
                true
            ),
            1,
            "keys() in hash order even when only counted — suppressible"
        );
    }

    #[test]
    fn btree_collect_and_sort_after_are_exempt() {
        assert_eq!(
            l10_count(
                &format!("{DECL}fn f(s: &S) {{ let m: BTreeMap<u32, u32> = s.df.iter().map(c).collect(); }}"),
                true
            ),
            0
        );
        assert_eq!(
            l10_count(
                &format!(
                    "{DECL}fn f(s: &S) {{ let m = s.df.iter().collect::<BTreeMap<_, _>>(); }}"
                ),
                true
            ),
            0
        );
        assert_eq!(
            l10_count(
                &format!(
                    "{DECL}fn f(s: &S) {{ let mut v: Vec<u32> = s.df.keys().copied().collect();\n\
                     v.sort_unstable(); }}"
                ),
                true
            ),
            0
        );
    }

    #[test]
    fn non_hash_names_tests_and_non_library_files_are_exempt() {
        assert_eq!(
            l10_count("fn f(v: &Vec<u32>) { for x in v.iter() { go(x); } }", true),
            0,
            "not a hash-typed binding"
        );
        assert_eq!(
            l10_count(
                &format!("{DECL}fn f(s: &S) {{ for v in s.df.values() {{ go(v); }} }}"),
                false
            ),
            0
        );
        assert_eq!(
            l10_count(
                &format!("{DECL}#[cfg(test)]\nmod t {{ fn f(s: &S) {{ for v in s.df.values() {{ go(v); }} }} }}"),
                true
            ),
            0
        );
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = format!(
            "{DECL}fn f(s: &S) {{\n\
             // mp-lint: allow(L10): u32 counting is commutative, order-free\n\
             for v in s.df.values() {{ total += v; }} }}"
        );
        assert_eq!(l10_count(&src, true), 0);
    }
}
