//! L11 — atomic-ordering discipline.
//!
//! The workspace uses atomics two ways, and each has a rule:
//!
//! * **Counter-only modules** (`StripedU64`, probe counters, RNG-draw
//!   tallies — the registered [`crate::context::RELAXED_COUNTER_MODULES`]
//!   list): every atomic is an independent counter/gauge whose value
//!   never publishes other memory, so `Ordering::Relaxed` is sound by
//!   construction. *Only* there: a Relaxed op anywhere else is flagged —
//!   registering a module on the list is the review point.
//! * **Publication protocols** (`Acquire`/`Release`/`AcqRel`/`SeqCst`):
//!   these only mean something in pairs. A release-class store whose
//!   field has no acquire-class load in the same module (or vice versa)
//!   is a half-protocol — it compiles, and it orders nothing. Each
//!   paired op must also carry a one-line comment stating the published
//!   invariant (containing "pairs with" or "publishes"), so the next
//!   editor knows what the fence protects.
//!
//! Ops whose receiver the syntax layer cannot name (a computed
//! expression) are skipped — under-approximation keeps the deny gate
//! trustworthy; `cmp::Ordering` variants never collide because only the
//! five atomic orderings are matched.

use super::diag_at;
use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;
use crate::syntax::{matching_backward, simple_receiver_name};

/// Atomic ops that read (acquire side when non-Relaxed).
const LOAD_OPS: &[&str] = &["load"];
/// Atomic ops that write (release side when non-Relaxed).
const STORE_OPS: &[&str] = &["store"];
/// Read-modify-write ops: both sides at once under `AcqRel`/`SeqCst`,
/// and they satisfy either side of a partner's pairing requirement.
const RMW_OPS: &[&str] = &[
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

const RELAXED_HINT: &str = "Relaxed is reserved for the registered counter-only modules \
                            (context::RELAXED_COUNTER_MODULES); use an acquire/release \
                            pair, or register the module if every atomic in it is an \
                            independent counter";

const COMMENT_HINT: &str = "add a one-line invariant comment containing `pairs with` or \
                            `publishes` on or just above the op, naming what the fence \
                            protects";

const PAIR_HINT: &str = "a one-sided fence orders nothing: add the matching \
                         acquire-side load / release-side store on the same field in \
                         this module, or downgrade to Relaxed if nothing is published";

/// One atomic op site: (code index of the op ident, field, op, ordering).
struct AtomicOp {
    idx: usize,
    field: Option<String>,
    op: String,
    ordering: &'static str,
}

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    let ops = collect_ops(a);
    let mut out = Vec::new();
    for op in &ops {
        if op.ordering == "Relaxed" {
            if !a.class.l11_relaxed_ok {
                out.push(diag_at(
                    a,
                    "L11",
                    op.idx,
                    format!(
                        "`Ordering::Relaxed` outside a registered counter-only module \
                         (`{}.{}`)",
                        op.field.as_deref().unwrap_or("<expr>"),
                        op.op
                    ),
                    RELAXED_HINT,
                ));
            }
            continue;
        }
        // Non-Relaxed: published-invariant comment…
        if !has_invariant_comment(a, a.code[op.idx].line) {
            out.push(diag_at(
                a,
                "L11",
                op.idx,
                format!(
                    "`Ordering::{}` without a published-invariant comment (`{}.{}`)",
                    op.ordering,
                    op.field.as_deref().unwrap_or("<expr>"),
                    op.op
                ),
                COMMENT_HINT,
            ));
        }
        // …and a same-field partner on the other side of the fence.
        let Some(field) = &op.field else {
            continue; // unnameable receiver: skip pairing (see module docs)
        };
        let side = op_side(&op.op);
        let satisfied = match side {
            Side::Rmw => true, // AcqRel/SeqCst RMW is both sides at once
            Side::Load => ops.iter().any(|p| {
                p.idx != op.idx
                    && p.field.as_deref() == Some(field)
                    && p.ordering != "Relaxed"
                    && matches!(op_side(&p.op), Side::Store | Side::Rmw)
            }),
            Side::Store => ops.iter().any(|p| {
                p.idx != op.idx
                    && p.field.as_deref() == Some(field)
                    && p.ordering != "Relaxed"
                    && matches!(op_side(&p.op), Side::Load | Side::Rmw)
            }),
        };
        if !satisfied {
            let want = match side {
                Side::Load => "release-side store/RMW",
                _ => "acquire-side load/RMW",
            };
            out.push(diag_at(
                a,
                "L11",
                op.idx,
                format!(
                    "`{field}.{}(…, Ordering::{})` has no {want} on `{field}` in this \
                     module",
                    op.op, op.ordering
                ),
                PAIR_HINT,
            ));
        }
    }
    out
}

enum Side {
    Load,
    Store,
    Rmw,
}

fn op_side(op: &str) -> Side {
    if LOAD_OPS.contains(&op) {
        Side::Load
    } else if STORE_OPS.contains(&op) {
        Side::Store
    } else {
        Side::Rmw
    }
}

/// Finds every `recv.op(…, Ordering::X)` site in non-test, non-`use`
/// code (both fully-qualified `Ordering::X` and imported bare variants
/// appear as `Ordering :: X` after the lexer — the `atomic::` prefix
/// form too).
fn collect_ops(a: &Analysis) -> Vec<AtomicOp> {
    const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    let code = &a.code;
    let mut out = Vec::new();
    let mut seen_calls = std::collections::BTreeSet::new();
    for (i, t) in code.iter().enumerate() {
        if t.text != "Ordering" || t.kind != TokKind::Ident {
            continue;
        }
        if a.is_test[i] || a.syntax.use_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(ord) = code
            .get(i + 1)
            .filter(|n| n.text == "::")
            .and_then(|_| code.get(i + 2))
            .and_then(|v| ORDERINGS.iter().find(|o| **o == v.text))
        else {
            continue;
        };
        // The ordering is an argument: walk out to the call's `(`. Only
        // the first ordering per call counts — `compare_exchange`'s
        // trailing failure ordering (conventionally Relaxed) is not an
        // independent fence.
        let Some(open) = enclosing_open_paren(a, i) else {
            continue;
        };
        if !seen_calls.insert(open) {
            continue;
        }
        let (field, op) = match open.checked_sub(2) {
            Some(dot)
                if code[dot + 1].kind == TokKind::Ident
                    && code[dot].text == "."
                    && (LOAD_OPS.contains(&code[dot + 1].text.as_str())
                        || STORE_OPS.contains(&code[dot + 1].text.as_str())
                        || RMW_OPS.contains(&code[dot + 1].text.as_str())) =>
            {
                (simple_receiver_name(code, dot), code[dot + 1].text.clone())
            }
            _ => continue, // not an atomic method call (e.g. a fence())
        };
        out.push(AtomicOp {
            idx: open - 1,
            field,
            op,
            ordering: ord,
        });
    }
    out
}

/// Index of the innermost unmatched `(` enclosing token `i`.
fn enclosing_open_paren(a: &Analysis, i: usize) -> Option<usize> {
    let code = &a.code;
    let mut j = i;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        let t = &code[j];
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => return Some(j),
            ")" => j = matching_backward(code, j, "(", ")")?,
            "{" | "}" | ";" => return None,
            _ => {}
        }
    }
}

/// A comment containing `pairs with` / `publishes` on the op's line or
/// up to two lines above it.
fn has_invariant_comment(a: &Analysis, line: u32) -> bool {
    a.comments.iter().any(|c| {
        c.line + 2 >= line
            && c.line <= line
            && (c.text.contains("pairs with") || c.text.contains("publishes"))
    })
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l11(src: &str, relaxed_ok: bool) -> Vec<String> {
        let class = FileClass {
            l11_relaxed_ok: relaxed_ok,
            ..FileClass::default()
        };
        let a = Analysis::build("f.rs", src, class);
        run_rules(&a)
            .into_iter()
            .filter(|d| d.rule == "L11")
            .map(|d| d.message)
            .collect()
    }

    #[test]
    fn relaxed_is_only_allowed_in_registered_modules() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        assert_eq!(l11(src, true).len(), 0);
        let found = l11(src, false);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("Relaxed"), "{found:?}");
    }

    #[test]
    fn paired_and_commented_protocol_is_clean() {
        let src = "\
impl Gen {
    fn bump(&self) {
        // publishes the edge snapshot written before the bump; pairs with load in read()
        self.gen.fetch_add(1, Ordering::Release);
    }
    fn read(&self) -> u64 {
        // pairs with the Release bump in bump()
        self.gen.load(Ordering::Acquire)
    }
}";
        assert_eq!(l11(src, false), Vec::<String>::new());
    }

    #[test]
    fn half_protocol_and_missing_comment_are_flagged() {
        let unpaired =
            "fn f(s: &S) {\n// pairs with nothing real\ns.flag.store(true, Ordering::Release); }";
        let found = l11(unpaired, false);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("no acquire-side"), "{found:?}");

        let uncommented = "\
impl S {
    fn w(&self) { self.flag.store(true, Ordering::Release); }
    fn r(&self) -> bool { self.flag.load(Ordering::Acquire) }
}";
        let found = l11(uncommented, false);
        assert_eq!(found.len(), 2, "one per op: {found:?}");
        assert!(found.iter().all(|m| m.contains("invariant comment")));
    }

    #[test]
    fn rmw_acqrel_self_pairs_and_tests_are_exempt() {
        let src = "// pairs with itself: AcqRel swap publishes and observes the slot\n\
                   fn f(s: &S) { s.slot.swap(1, Ordering::AcqRel); }";
        assert_eq!(l11(src, false), Vec::<String>::new());
        let test_src =
            "#[cfg(test)]\nmod t { fn f(c: &AtomicU64) { c.store(1, Ordering::SeqCst); } }";
        assert_eq!(l11(test_src, false), Vec::<String>::new());
    }

    #[test]
    fn cmp_ordering_variants_never_collide() {
        let src = "fn f(a: u32, b: u32) -> Ordering { a.cmp(&b).then(Ordering::Less) }";
        assert_eq!(l11(src, false), Vec::<String>::new());
    }
}
