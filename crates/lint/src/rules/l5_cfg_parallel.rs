//! L5 — `cfg(feature = "parallel")` hygiene.
//!
//! The `parallel` feature must be a pure accelerator: `--no-default-features`
//! builds have to produce the same API and the same results. Every use
//! of the feature gate therefore needs a serial fallback:
//!
//! * **Block position** (`#[cfg(feature = "parallel")] { … }` inside a
//!   function) is fine — control falls through to the sequential code
//!   after the block, which *is* the fallback (the `mp-core::par`
//!   pattern).
//! * **Item position** (on a `fn`, `mod`, `use`, `impl`, …) requires a
//!   `#[cfg(not(feature = "parallel"))]` twin somewhere in the same
//!   file; otherwise the item simply vanishes from serial builds and
//!   the API drifts.
//!
//! `cfg!(feature = "parallel")` in expressions is inherently safe (both
//! branches compile) and is not matched by this rule.

use super::diag_at;
use crate::context::Analysis;
use crate::diagnostics::Diagnostic;
use crate::lexer::{TokKind, Token};

const HINT: &str = "add a #[cfg(not(feature = \"parallel\"))] fallback item in this file, \
                    or gate a block inside the function so control falls through serially";

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    let mut item_gates: Vec<usize> = Vec::new();
    let mut negative_gates = 0usize;
    let mut i = 0usize;
    while i < a.code.len() {
        if a.code[i].text != "#" || a.code.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        let close = bracket_close(&a.code, i + 1);
        let attr = &a.code[i + 2..close.min(a.code.len())];
        if gates_on_parallel(attr) {
            if attr.iter().any(|t| t.text == "not") {
                negative_gates += 1;
            } else {
                let next = a.code.get(close + 1);
                let block_position = next.is_some_and(|t| t.text == "{");
                if !block_position {
                    item_gates.push(i);
                }
            }
        }
        i = close + 1;
    }
    if negative_gates > 0 {
        return Vec::new();
    }
    item_gates
        .into_iter()
        .map(|idx| {
            diag_at(
                a,
                "L5",
                idx,
                "item gated on feature `parallel` with no `not(feature = \"parallel\")` \
                 fallback in this file"
                    .to_string(),
                HINT,
            )
        })
        .collect()
}

/// True when the attribute tokens are a `cfg`/`cfg_attr` mentioning
/// `feature = "parallel"`.
fn gates_on_parallel(attr: &[Token]) -> bool {
    let is_cfg = matches!(
        attr.first().map(|t| t.text.as_str()),
        Some("cfg") | Some("cfg_attr")
    );
    if !is_cfg {
        return false;
    }
    attr.windows(3).any(|w| {
        w[0].text == "feature"
            && w[1].text == "="
            && w[2].kind == TokKind::Str
            && w[2].str_content() == Some("parallel")
    })
}

/// Index of the `]` closing the `[` at `open` (bracket depth aware).
fn bracket_close(code: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l5_count(src: &str) -> usize {
        let a = Analysis::build("f.rs", src, FileClass::default());
        run_rules(&a).iter().filter(|d| d.rule == "L5").count()
    }

    #[test]
    fn block_position_gate_is_fine() {
        let src = "fn f() {\n#[cfg(feature = \"parallel\")]\n{ fast(); return; }\nslow(); }";
        assert_eq!(l5_count(src), 0);
    }

    #[test]
    fn item_gate_without_twin_is_flagged() {
        let src = "#[cfg(feature = \"parallel\")]\nfn fast() {}";
        assert_eq!(l5_count(src), 1);
    }

    #[test]
    fn item_gate_with_not_twin_is_fine() {
        let src = "#[cfg(feature = \"parallel\")]\nfn go() { fast() }\n\
                   #[cfg(not(feature = \"parallel\"))]\nfn go() { slow() }";
        assert_eq!(l5_count(src), 0);
    }

    #[test]
    fn other_features_are_ignored() {
        assert_eq!(l5_count("#[cfg(feature = \"serde\")]\nfn s() {}"), 0);
        assert_eq!(
            l5_count("fn f() { if cfg!(feature = \"parallel\") { a() } else { b() } }"),
            0
        );
    }
}
