//! L7 — deferred-work marker tracking.
//!
//! A `TODO` or `FIXME` comment must carry an issue reference in the
//! form `TODO(#123)` / `FIXME(#45)` so deferred work stays queryable —
//! untracked markers rot. The rule also flags `todo!()` /
//! `unimplemented!()` macros in non-test code: a reachable panic stub
//! is deferred work whether or not it is spelled as a comment.
//!
//! Warn by default (it is about process, not numeric soundness);
//! promoted to deny under `--deny-all`, which is how CI runs.

use super::diag_at;
use crate::context::Analysis;
use crate::diagnostics::{Diagnostic, Level};
use crate::lexer::TokKind;

const MARKERS: &[&str] = &["TODO", "FIXME"];

const HINT: &str = "track it: `TODO(#<issue>): …`, or resolve it before merging";

pub(crate) fn check(a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for c in &a.comments {
        for marker in MARKERS {
            let Some(pos) = find_marker(&c.text, marker) else {
                continue;
            };
            if !has_issue_ref(&c.text[pos + marker.len()..]) {
                out.push(Diagnostic {
                    rule: "L7",
                    level: Level::Warn,
                    path: a.path.clone(),
                    line: c.line,
                    col: c.col,
                    message: format!("`{marker}` without an issue reference"),
                    snippet: c.text.trim().chars().take(80).collect(),
                    hint: HINT.to_string(),
                });
            }
            break; // one diagnostic per comment
        }
    }
    for (i, t) in a.code.iter().enumerate() {
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "todo" | "unimplemented")
            && a.code.get(i + 1).is_some_and(|n| n.text == "!")
            && !a.is_test[i]
        {
            out.push(diag_at(
                a,
                "L7",
                i,
                format!("`{}!()` stub in non-test code", t.text),
                HINT,
            ));
        }
    }
    out
}

/// Finds `marker` used *as a marker*: at a word boundary and followed
/// by `:`, `(`, whitespace, or end of comment. Backtick-quoted mentions
/// in prose (`` `TODO` ``) are not markers.
fn find_marker(text: &str, marker: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(rel) = text[from..].find(marker) {
        let pos = from + rel;
        let before_ok = text[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric());
        let after = text[pos + marker.len()..].chars().next();
        let after_ok =
            matches!(after, None | Some(':') | Some('(')) || after.is_some_and(char::is_whitespace);
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + marker.len();
    }
    None
}

/// After the marker: optional spaces, then `(#<digits>)`.
fn has_issue_ref(rest: &str) -> bool {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("(#") else {
        return false;
    };
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    !digits.is_empty() && rest[digits.len()..].starts_with(')')
}

#[cfg(test)]
mod tests {
    use crate::context::{Analysis, FileClass};
    use crate::rules::run_rules;

    fn l7_count(src: &str) -> usize {
        let a = Analysis::build("f.rs", src, FileClass::default());
        run_rules(&a).iter().filter(|d| d.rule == "L7").count()
    }

    #[test]
    fn flags_untracked_markers() {
        assert_eq!(l7_count("// TODO: make this faster\nfn f() {}"), 1);
        assert_eq!(l7_count("/* FIXME this is broken */\nfn f() {}"), 1);
    }

    #[test]
    fn accepts_issue_referenced_markers() {
        assert_eq!(l7_count("// TODO(#12): make this faster\nfn f() {}"), 0);
        assert_eq!(l7_count("// FIXME (#3) edge case at zero\nfn f() {}"), 0);
    }

    #[test]
    fn flags_panic_stubs_outside_tests() {
        assert_eq!(l7_count("fn f() { todo!() }"), 1);
        assert_eq!(l7_count("fn f() { unimplemented!() }"), 1);
        assert_eq!(l7_count("#[cfg(test)]\nmod t { fn f() { todo!() } }"), 0);
    }
}
