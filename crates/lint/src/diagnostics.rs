//! Diagnostic type and the two output formats: human-readable text and
//! machine-readable JSON (hand-rolled — this crate has no dependencies).

/// Severity of a diagnostic. `Warn` does not affect the exit code
/// unless `--deny-all` promotes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Blocks: non-zero exit.
    Deny,
    /// Reported but non-blocking by default.
    Warn,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Deny => "deny",
            Level::Warn => "warn",
        }
    }
}

/// One finding, pointing at `path:line:col`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Canonical rule id (`L1` … `L7`, `A0`).
    pub rule: &'static str,
    /// Severity after any promotion.
    pub level: Level,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// The offending source fragment.
    pub snippet: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// Stable identity content for [`Report::fingerprints`]: everything
    /// that survives unrelated edits (no line/col — a finding that
    /// merely moves keeps its fingerprint).
    fn fingerprint_seed(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.rule, self.path, self.snippet, self.message
        )
    }
}

/// A full linting run: every diagnostic plus scan statistics.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in file order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Number of deny-level findings.
    pub fn denies(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warns(&self) -> usize {
        self.diagnostics.len() - self.denies()
    }

    /// Promotes every warning to deny (`--deny-all`).
    pub fn deny_all(&mut self) {
        for d in &mut self.diagnostics {
            d.level = Level::Deny;
        }
    }

    /// Keeps only diagnostics whose rule id is in `ids`.
    pub fn retain_rules(&mut self, ids: &[&str]) {
        self.diagnostics.retain(|d| ids.contains(&d.rule));
    }

    /// Human-readable rendering, one block per finding plus a summary
    /// line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}:{}: {}[{}]: {}\n",
                d.path,
                d.line,
                d.col,
                d.level.as_str(),
                d.rule,
                d.message
            ));
            if !d.snippet.is_empty() {
                out.push_str(&format!("    | {}\n", d.snippet.trim()));
            }
            if !d.hint.is_empty() {
                out.push_str(&format!("    = hint: {}\n", d.hint));
            }
        }
        out.push_str(&format!(
            "mp-lint: {} file(s) scanned, {} error(s), {} warning(s)\n",
            self.files_scanned,
            self.denies(),
            self.warns()
        ));
        out
    }

    /// Stable per-finding fingerprints, parallel to `diagnostics`.
    ///
    /// Each is a 16-hex-digit FNV-1a hash of
    /// `rule|path|snippet|message|occurrence-index`, where the
    /// occurrence index counts identical seeds within the report — so
    /// two verbatim-identical findings in one file stay distinct, and a
    /// finding keeps its fingerprint when unrelated edits shift its
    /// line number. CI diffs these against `lint-baseline.json`: a new
    /// fingerprint is a new finding even if older ones moved around.
    pub fn fingerprints(&self) -> Vec<String> {
        let mut seen: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
        self.diagnostics
            .iter()
            .map(|d| {
                let seed = d.fingerprint_seed();
                let occ = seen.entry(seed.clone()).or_insert(0);
                let fp = format!("{:016x}", fnv1a64(format!("{seed}|{occ}").as_bytes()));
                *occ += 1;
                fp
            })
            .collect()
    }

    /// JSON rendering (stable shape, see LINT.md "Output formats").
    pub fn render_json(&self) -> String {
        let fps = self.fingerprints();
        let mut out = String::from("{");
        out.push_str("\"version\":2,");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},",
            self.denies(),
            self.warns()
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"level\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{},\"snippet\":{},\"hint\":{},\"fingerprint\":{}}}",
                json_str(d.rule),
                json_str(d.level.as_str()),
                json_str(&d.path),
                d.line,
                d.col,
                json_str(&d.message),
                json_str(&d.snippet),
                json_str(&d.hint),
                json_str(&fps[i]),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// 64-bit FNV-1a — the standard offset basis and prime, dependency-free
/// and stable across platforms (fingerprints are committed in the CI
/// baseline, so the hash must never vary by target).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extracts every 16-hex-digit fingerprint string from a baseline JSON
/// file's text. Deliberately not a JSON parser: the baseline is written
/// by `render_json` (or is the committed empty report), and scanning
/// for quoted 16-hex tokens is robust to field reordering and hand
/// edits while keeping this crate dependency-free.
pub fn baseline_fingerprints(json: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = json.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            if j <= bytes.len() {
                let s = &json[start..j.min(json.len())];
                if s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit()) {
                    out.push(s.to_string());
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            diagnostics: vec![Diagnostic {
                rule: "L1",
                level: Level::Deny,
                path: "crates/x/src/a.rs".to_string(),
                line: 3,
                col: 9,
                message: "float `==`".to_string(),
                snippet: "a == 1.0".to_string(),
                hint: "use approx_eq\twith \"tol\"".to_string(),
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn human_output_has_location_and_hint() {
        let text = sample().render_human();
        assert!(text.contains("crates/x/src/a.rs:3:9: deny[L1]"));
        assert!(text.contains("= hint:"));
        assert!(text.contains("2 file(s) scanned, 1 error(s), 0 warning(s)"));
    }

    #[test]
    fn json_output_escapes_and_counts() {
        let json = sample().render_json();
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\\t"));
        assert!(json.contains("\\\"tol\\\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn fingerprints_are_stable_against_moves_and_distinct_per_occurrence() {
        let mut r = sample();
        let before = r.fingerprints();
        assert_eq!(before.len(), 1);
        assert_eq!(before[0].len(), 16);
        // Moving the finding (line/col churn from unrelated edits)
        // keeps its fingerprint.
        r.diagnostics[0].line = 77;
        r.diagnostics[0].col = 1;
        assert_eq!(r.fingerprints(), before);
        // A verbatim-identical second finding gets a distinct one.
        let twin = r.diagnostics[0].clone();
        r.diagnostics.push(twin);
        let fps = r.fingerprints();
        assert_eq!(fps[0], before[0]);
        assert_ne!(fps[0], fps[1]);
        // …and a different rule changes it.
        r.diagnostics[1].rule = "L2";
        assert_ne!(r.fingerprints()[1], fps[1]);
    }

    #[test]
    fn json_carries_fingerprints_and_baseline_extraction_roundtrips() {
        let r = sample();
        let json = r.render_json();
        assert!(json.contains("\"version\":2"));
        assert!(json.contains("\"fingerprint\":\""));
        assert_eq!(baseline_fingerprints(&json), r.fingerprints());
        // The committed-empty baseline yields no fingerprints.
        let empty = Report::default().render_json();
        assert!(baseline_fingerprints(&empty).is_empty());
    }

    #[test]
    fn deny_all_promotes_warnings() {
        let mut r = sample();
        r.diagnostics[0].level = Level::Warn;
        assert_eq!(r.denies(), 0);
        r.deny_all();
        assert_eq!(r.denies(), 1);
    }
}
