//! Diagnostic type and the two output formats: human-readable text and
//! machine-readable JSON (hand-rolled — this crate has no dependencies).

/// Severity of a diagnostic. `Warn` does not affect the exit code
/// unless `--deny-all` promotes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Blocks: non-zero exit.
    Deny,
    /// Reported but non-blocking by default.
    Warn,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Deny => "deny",
            Level::Warn => "warn",
        }
    }
}

/// One finding, pointing at `path:line:col`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Canonical rule id (`L1` … `L7`, `A0`).
    pub rule: &'static str,
    /// Severity after any promotion.
    pub level: Level,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// The offending source fragment.
    pub snippet: String,
    /// How to fix it.
    pub hint: String,
}

/// A full linting run: every diagnostic plus scan statistics.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in file order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Number of deny-level findings.
    pub fn denies(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warns(&self) -> usize {
        self.diagnostics.len() - self.denies()
    }

    /// Promotes every warning to deny (`--deny-all`).
    pub fn deny_all(&mut self) {
        for d in &mut self.diagnostics {
            d.level = Level::Deny;
        }
    }

    /// Keeps only diagnostics whose rule id is in `ids`.
    pub fn retain_rules(&mut self, ids: &[&str]) {
        self.diagnostics.retain(|d| ids.contains(&d.rule));
    }

    /// Human-readable rendering, one block per finding plus a summary
    /// line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}:{}: {}[{}]: {}\n",
                d.path,
                d.line,
                d.col,
                d.level.as_str(),
                d.rule,
                d.message
            ));
            if !d.snippet.is_empty() {
                out.push_str(&format!("    | {}\n", d.snippet.trim()));
            }
            if !d.hint.is_empty() {
                out.push_str(&format!("    = hint: {}\n", d.hint));
            }
        }
        out.push_str(&format!(
            "mp-lint: {} file(s) scanned, {} error(s), {} warning(s)\n",
            self.files_scanned,
            self.denies(),
            self.warns()
        ));
        out
    }

    /// JSON rendering (stable shape, see LINT.md "Output formats").
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"version\":1,");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},",
            self.denies(),
            self.warns()
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"level\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{},\"snippet\":{},\"hint\":{}}}",
                json_str(d.rule),
                json_str(d.level.as_str()),
                json_str(&d.path),
                d.line,
                d.col,
                json_str(&d.message),
                json_str(&d.snippet),
                json_str(&d.hint),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            diagnostics: vec![Diagnostic {
                rule: "L1",
                level: Level::Deny,
                path: "crates/x/src/a.rs".to_string(),
                line: 3,
                col: 9,
                message: "float `==`".to_string(),
                snippet: "a == 1.0".to_string(),
                hint: "use approx_eq\twith \"tol\"".to_string(),
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn human_output_has_location_and_hint() {
        let text = sample().render_human();
        assert!(text.contains("crates/x/src/a.rs:3:9: deny[L1]"));
        assert!(text.contains("= hint:"));
        assert!(text.contains("2 file(s) scanned, 1 error(s), 0 warning(s)"));
    }

    #[test]
    fn json_output_escapes_and_counts() {
        let json = sample().render_json();
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\\t"));
        assert!(json.contains("\\\"tol\\\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn deny_all_promotes_warnings() {
        let mut r = sample();
        r.diagnostics[0].level = Level::Warn;
        assert_eq!(r.denies(), 0);
        r.deny_all();
        assert_eq!(r.denies(), 1);
    }
}
