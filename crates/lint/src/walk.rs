//! Workspace discovery: which `.rs` files get linted and how each is
//! classified.
//!
//! Scope (documented in LINT.md): the umbrella crate (`src/`, `tests/`,
//! `examples/`) and every `crates/<name>/{src,tests,benches}` tree.
//! `vendor/` is excluded — those are offline stand-ins for external
//! crates, not code this workspace owns — as are `target/` and the
//! linter's own intentionally-violating fixtures under
//! `crates/lint/tests/fixtures/`.

use crate::context::{FileClass, DETERMINISTIC_CRATES, LIBRARY_CRATES, RELAXED_COUNTER_MODULES};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One file to lint.
#[derive(Debug, Clone)]
pub struct WorkspaceFile {
    /// Absolute (or root-joined) path for reading.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators, for diagnostics.
    pub rel: String,
    /// Rule-applicability classification.
    pub class: FileClass,
}

/// Discovers every lintable file under `root` (a workspace checkout).
/// Deterministic order (sorted by relative path).
pub fn discover(root: &Path) -> io::Result<Vec<WorkspaceFile>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "benches"] {
        collect(&root.join(top), root, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for krate in entries {
            if !krate.is_dir() {
                continue;
            }
            for sub in ["src", "tests", "benches"] {
                collect(&krate.join(sub), root, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<WorkspaceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = relative(&path, root);
            if rel.contains("tests/fixtures/") {
                continue; // the linter's intentionally-violating corpus
            }
            let class = classify(&rel);
            out.push(WorkspaceFile { path, rel, class });
        }
    }
    Ok(())
}

fn relative(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Maps a workspace-relative path to the rules that apply to it.
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let mut class = FileClass::default();
    match parts.as_slice() {
        ["src", rest @ ..] => {
            class.l3_library = !binary_path(rest);
            class.l8_library = class.l3_library;
            class.l10_library = class.l3_library;
        }
        ["tests" | "examples" | "benches", ..] => class.test_file = true,
        ["crates", krate, "src", rest @ ..] => {
            class.l3_library = LIBRARY_CRATES.contains(krate) && !binary_path(rest);
            class.l8_library = class.l3_library;
            class.l10_library = class.l3_library;
            class.l4_exempt = (*krate == "core" && rest == ["par.rs"])
                || (*krate == "serve" && rest == ["pool.rs"]);
            // The modules a cold serve request traverses per probe: the
            // PR-6 de-contention audit holds them lock-free by default.
            // The shard layer joined the set when serving grew a
            // partitioned backend — scatter/gather runs on the same
            // cold path, so it is held to the same no-lock standard.
            // The batch modules (serve-side scheduling policy, the
            // core lock-step executor) joined with term-sharing batched
            // execution: every batched cold miss runs through them.
            class.l9_hot_path = (*krate == "serve"
                && matches!(
                    rest,
                    ["server.rs" | "stats.rs" | "cache.rs" | "queue.rs" | "pool.rs" | "batch.rs"]
                ))
                || (*krate == "core" && matches!(rest, ["shard.rs" | "batch.rs"]))
                || (*krate == "hidden" && matches!(rest, ["db.rs" | "unreliable.rs"]));
            class.l11_relaxed_ok = RELAXED_COUNTER_MODULES.contains(&rel);
            // `serve::batch` holds the EDF / shed / term-grouping
            // *decisions* as pure functions (the single clock read
            // lives in `server.rs`), so it is held to the same
            // deterministic contract as the engine crates.
            class.l13_deterministic =
                DETERMINISTIC_CRATES.contains(krate) || (*krate == "serve" && rest == ["batch.rs"]);
        }
        ["crates", _, "tests" | "benches", ..] => class.test_file = true,
        _ => {}
    }
    class
}

/// `src/main.rs` and anything under `src/bin/` is a binary entry point,
/// where `expect` on startup errors is the intended UX.
fn binary_path(rest: &[&str]) -> bool {
    rest == ["main.rs"] || rest.first() == Some(&"bin")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        assert!(classify("crates/stats/src/discrete.rs").l3_library);
        assert!(classify("crates/core/src/probing/apro.rs").l3_library);
        assert!(!classify("crates/cli/src/lib.rs").l3_library);
        assert!(!classify("crates/core/src/bin/tool.rs").l3_library);
        assert!(!classify("crates/lint/src/main.rs").l3_library);
        assert!(classify("crates/lint/src/lexer.rs").l3_library);
        assert!(classify("src/lib.rs").l3_library);
        // PR 5 retrieval-kernel files are ordinary library code: fully
        // linted, no exemptions.
        assert!(classify("crates/index/src/derived.rs").l3_library);
        assert!(classify("crates/index/src/scratch.rs").l3_library);
        assert!(classify("crates/index/src/derived.rs").l8_library);
        assert!(classify("crates/index/src/scratch.rs").l8_library);
        assert!(!classify("crates/index/src/scratch.rs").l4_exempt);
        assert!(classify("crates/index/tests/kernel_equivalence.rs").test_file);
        assert!(classify("crates/bench/benches/retrieval_kernel.rs").test_file);

        assert!(classify("crates/core/src/par.rs").l4_exempt);
        assert!(classify("crates/serve/src/pool.rs").l4_exempt);
        assert!(!classify("crates/serve/src/cache.rs").l4_exempt);
        assert!(!classify("crates/eval/src/runner.rs").l4_exempt);
        assert!(classify("crates/serve/src/server.rs").l3_library);

        // PR 6 shared-nothing audit: the serve-hot-path modules are
        // under L9; everything else (including their tests) is not.
        assert!(classify("crates/serve/src/server.rs").l9_hot_path);
        assert!(classify("crates/serve/src/stats.rs").l9_hot_path);
        assert!(classify("crates/serve/src/cache.rs").l9_hot_path);
        assert!(classify("crates/serve/src/queue.rs").l9_hot_path);
        assert!(classify("crates/serve/src/pool.rs").l9_hot_path);
        assert!(classify("crates/hidden/src/db.rs").l9_hot_path);
        assert!(classify("crates/hidden/src/unreliable.rs").l9_hot_path);
        assert!(classify("crates/core/src/shard.rs").l9_hot_path);
        assert!(classify("crates/core/src/shard.rs").l13_deterministic);
        // PR 10 batch modules: on the batched cold path (L9) and — for
        // the pure serve-side policy module — deterministic (L13).
        assert!(classify("crates/serve/src/batch.rs").l9_hot_path);
        assert!(classify("crates/serve/src/batch.rs").l13_deterministic);
        assert!(classify("crates/core/src/batch.rs").l9_hot_path);
        assert!(classify("crates/core/src/batch.rs").l13_deterministic);
        assert!(classify("crates/index/src/batch.rs").l13_deterministic);
        assert!(!classify("crates/index/src/batch.rs").l9_hot_path);
        assert!(!classify("crates/serve/src/lib.rs").l13_deterministic);
        assert!(!classify("crates/serve/tests/batch_replay.rs").l13_deterministic);
        assert!(!classify("crates/core/src/metasearcher.rs").l9_hot_path);
        assert!(!classify("crates/serve/src/lib.rs").l9_hot_path);
        assert!(!classify("crates/hidden/src/mediator.rs").l9_hot_path);
        assert!(!classify("crates/obs/src/registry.rs").l9_hot_path);
        assert!(!classify("crates/serve/tests/queue_stress.rs").l9_hot_path);

        assert!(classify("crates/obs/src/export.rs").l8_library);
        assert!(classify("src/lib.rs").l8_library);
        assert!(!classify("crates/cli/src/main.rs").l8_library);
        assert!(!classify("crates/bench/src/bin/repro.rs").l8_library);
        assert!(!classify("crates/lint/src/main.rs").l8_library);

        assert!(classify("tests/end_to_end.rs").test_file);
        assert!(classify("examples/quickstart.rs").test_file);
        assert!(classify("crates/stats/benches/micro.rs").test_file);
        assert!(classify("crates/lint/tests/fixtures_test.rs").test_file);
        assert!(!classify("crates/stats/src/lib.rs").test_file);

        // L10 tracks the shared library-crate list.
        assert!(classify("crates/index/src/index.rs").l10_library);
        assert!(classify("crates/serve/src/cache.rs").l10_library);
        assert!(classify("src/lib.rs").l10_library);
        assert!(!classify("crates/cli/src/main.rs").l10_library);
        assert!(!classify("crates/index/tests/kernel_equivalence.rs").l10_library);

        // L11: only the registered counter-only modules may use Relaxed.
        assert!(classify("crates/obs/src/stripe.rs").l11_relaxed_ok);
        assert!(classify("crates/serve/src/stats.rs").l11_relaxed_ok);
        assert!(classify("crates/core/src/par.rs").l11_relaxed_ok);
        assert!(!classify("crates/serve/src/server.rs").l11_relaxed_ok);
        assert!(!classify("crates/core/src/engine.rs").l11_relaxed_ok);

        // L13: the deterministic-contract crates, src only.
        assert!(classify("crates/core/src/engine.rs").l13_deterministic);
        assert!(classify("crates/stats/src/discrete.rs").l13_deterministic);
        assert!(classify("crates/index/src/index.rs").l13_deterministic);
        assert!(classify("crates/hidden/src/unreliable.rs").l13_deterministic);
        assert!(!classify("crates/obs/src/span.rs").l13_deterministic);
        assert!(!classify("crates/serve/src/server.rs").l13_deterministic);
        assert!(!classify("crates/core/tests/engine_equivalence.rs").l13_deterministic);
    }
}
