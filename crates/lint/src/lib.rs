//! # mp-lint — workspace-native static analysis for `metaprobe`
//!
//! The probabilistic engine's correctness rests on invariants `cargo
//! clippy` cannot express: no float `==` outside tests (L1), no lossy
//! `as` casts on counts and indices (L2), no `unwrap()` in library
//! crates (L3), no thread spawns outside `mp-core::par` (L4),
//! `cfg(feature = "parallel")` hygiene (L5), normalization
//! `debug_assert`s in every pmf constructor (L6), and issue-tracked
//! TODOs (L7). This crate is a zero-dependency, token-level analyzer
//! that enforces them across the whole workspace.
//!
//! See `LINT.md` at the workspace root for the rule catalog with
//! rationales, the suppression syntax, and the exact heuristics.
//!
//! ## Entry points
//!
//! * [`lint_workspace`] — walk a checkout and lint everything (the CLI
//!   and the `repro` preflight use this);
//! * [`lint_source`] — lint one in-memory file (fixtures and tests);
//! * [`preflight`] — convenience wrapper returning `Err(report)` text
//!   when the tree has deny-level findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod diagnostics;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod syntax;
pub mod walk;

pub use context::FileClass;
pub use diagnostics::{Diagnostic, Level, Report};
pub use rules::{rule_by_name, RuleInfo, RULES};

use std::io;
use std::path::Path;

/// Lints a single source text under the given classification. `path` is
/// only used to label diagnostics.
pub fn lint_source(path: &str, source: &str, class: FileClass) -> Vec<Diagnostic> {
    let analysis = context::Analysis::build(path, source, class);
    rules::run_rules(&analysis)
}

/// Lints every workspace file under `root` (see [`walk::discover`] for
/// the scope).
///
/// Two passes: every file is analyzed first so the workspace call and
/// lock graphs ([`graph::WorkspaceGraph`]) can be derived over all of
/// them, then the per-file rules, the graph's L12 findings, and the
/// suppression/meta layer are combined per file.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = walk::discover(root)?;
    let mut analyses = Vec::with_capacity(files.len());
    for f in &files {
        let source = std::fs::read_to_string(&f.path)?;
        analyses.push(context::Analysis::build(&f.rel, &source, f.class.clone()));
    }
    let graph = graph::WorkspaceGraph::build(&analyses);
    let mut report = Report::default();
    for a in &analyses {
        let mut raw = rules::per_file_rules(a);
        raw.extend(graph.diags_for(&a.path));
        report.diagnostics.extend(rules::finalize(a, raw));
    }
    report.files_scanned = files.len();
    Ok(report)
}

/// Runs the linter as a blocking preflight (used by `repro` before
/// spending hours regenerating figures): returns the human-rendered
/// report as `Err` when any deny-level diagnostic exists.
///
/// Warnings are promoted (`--deny-all` semantics): a preflight exists
/// to stop drift before an expensive run, so it uses the strict CI
/// configuration.
pub fn preflight(root: &Path) -> Result<(), String> {
    let mut report = match lint_workspace(root) {
        Ok(r) => r,
        // A missing source tree (e.g. an installed binary run outside
        // the checkout) is not a lint failure; skip silently.
        Err(_) => return Ok(()),
    };
    report.deny_all();
    if report.denies() > 0 {
        Err(report.render_human())
    } else {
        Ok(())
    }
}
