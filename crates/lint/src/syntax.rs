//! Syntax-lite: a lightweight structural layer over the token stream.
//!
//! mp-lint deliberately has no dependencies, so it cannot use a real
//! Rust parser — but several rules need more structure than a flat
//! token scan: L6 must know a function's *return type*, L9 must know
//! which tokens sit inside `use` declarations, L10 must know which
//! bindings are hash-typed, and L12 must walk function bodies. This
//! module parses exactly the slice of Rust those rules need — items,
//! `fn` signatures (name / params / return type / body span),
//! brace-scoped blocks, `use` trees, and method-call chains — and
//! nothing more ("syntax-lite", not full Rust). Everything here is a
//! *conservative over-approximation*: when the token stream is
//! ambiguous the layer errs toward "don't know", and rules treat
//! "don't know" as "don't flag" (for deny rules) so the tree's own
//! gate stays trustworthy.

use crate::context::matching_brace;
use crate::lexer::{TokKind, Token};
use std::collections::BTreeSet;

/// A parsed `fn` item: `fn name <generics>? ( params ) (-> ret)?
/// (where …)? { body }`. Token indices refer to the code-token vector
/// the file was built from.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Index of the `fn` keyword token.
    pub fn_idx: usize,
    /// Index of the function-name identifier.
    pub name_idx: usize,
    /// The function name.
    pub name: String,
    /// Return-type token range `[start, end)`; empty when the function
    /// returns `()`.
    pub ret: (usize, usize),
    /// Body brace span `(open, close)` (both inclusive token indices),
    /// or `None` for trait-signature declarations.
    pub body: Option<(usize, usize)>,
    /// Index of the body's `{` (or the terminating `;`): where the
    /// signature ends.
    pub sig_end: usize,
    /// The innermost enclosing `impl` block's type name, if any.
    pub impl_ty: Option<String>,
}

/// The structural facts one file exposes to the rules.
#[derive(Debug, Clone, Default)]
pub struct FileSyntax {
    /// Every `fn` item in the file, in source order (including fns
    /// nested in test modules — callers consult the test mask).
    pub fns: Vec<FnDecl>,
    /// Parallel to the code tokens: token sits inside a `use …;`
    /// declaration (imports name types without using them).
    pub use_mask: Vec<bool>,
    /// Names of bindings whose *outermost* type constructor is
    /// `HashMap` / `HashSet`: struct fields, `let` bindings with a type
    /// annotation or a `HashMap::new()`-style initializer, and fn
    /// params. Name-keyed (not scope-keyed): a rare same-name,
    /// different-type shadow over-approximates, and the finding is
    /// suppressible.
    pub hash_names: BTreeSet<String>,
}

impl FileSyntax {
    /// Parses the structural layer from a file's code tokens plus the
    /// per-token impl-type resolution from [`crate::context`].
    pub fn build(code: &[Token], impl_ty: &[Option<String>]) -> Self {
        FileSyntax {
            fns: parse_fns(code, impl_ty),
            use_mask: use_mask(code),
            hash_names: hash_typed_names(code),
        }
    }
}

/// Marks every token belonging to a `use …;` declaration (the `use`
/// keyword through the terminating `;`).
fn use_mask(code: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if code[i].kind == TokKind::Ident && code[i].text == "use" {
            let mut j = i;
            while j < code.len() && code[j].text != ";" {
                mask[j] = true;
                j += 1;
            }
            if j < code.len() {
                mask[j] = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Walks the whole token stream and parses every `fn` item.
fn parse_fns(code: &[Token], impl_ty: &[Option<String>]) -> Vec<FnDecl> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].kind == TokKind::Ident && code[i].text == "fn" {
            if let Some(f) = parse_fn(code, impl_ty, i) {
                // Only the header is skipped: fns nested inside this
                // body are still visited.
                i = f.sig_end + 1;
                out.push(f);
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses one `fn` item starting at the `fn` keyword. Returns `None`
/// for `fn`-in-type position (`fn(usize) -> f64`).
fn parse_fn(code: &[Token], impl_ty: &[Option<String>], fn_idx: usize) -> Option<FnDecl> {
    let name_idx = fn_idx + 1;
    if code.get(name_idx)?.kind != TokKind::Ident {
        return None;
    }
    let mut j = name_idx + 1;
    // Generics.
    if code.get(j).is_some_and(|t| t.text == "<") {
        let mut angle = 0i32;
        while j < code.len() {
            match code[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
            j += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    // Parameters.
    if code.get(j).is_none_or(|t| t.text != "(") {
        return None;
    }
    let params_close = matching_close_paren(code, j)?;
    j = params_close + 1;
    // Return type.
    let mut ret = (j, j);
    if code.get(j).is_some_and(|t| t.text == "->") {
        let start = j + 1;
        let mut k = start;
        let mut angle = 0i32;
        let mut paren = 0i32;
        while k < code.len() {
            match code[k].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" | ";" | "where" if angle <= 0 && paren <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        ret = (start, k);
        j = k;
    }
    // Where clause.
    while j < code.len() && code[j].text != "{" && code[j].text != ";" {
        j += 1;
    }
    let body = if code.get(j).is_some_and(|t| t.text == "{") {
        Some((j, matching_brace(code, j)))
    } else {
        None
    };
    Some(FnDecl {
        fn_idx,
        name_idx,
        name: code[name_idx].text.clone(),
        ret,
        body,
        sig_end: j,
        impl_ty: impl_ty.get(fn_idx).cloned().flatten(),
    })
}

/// Collects binding names whose outermost type constructor is
/// `HashMap`/`HashSet` — from type annotations (`name: HashMap<…>`,
/// struct fields and params alike) and from constructor initializers
/// (`name = HashMap::new()` / `with_capacity` / `from`).
fn hash_typed_names(code: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Strip a `std :: collections ::`-style path prefix.
        let mut j = i;
        while j >= 2 && code[j - 1].text == "::" && code[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        if code.get(i + 1).is_some_and(|n| n.text == "::") {
            // Value position: `name = HashMap::new()`.
            if code[j - 1].text == "=" && j >= 2 && code[j - 2].kind == TokKind::Ident {
                out.insert(code[j - 2].text.clone());
            }
            continue;
        }
        // Type position: `name : [&] [mut] HashMap<…>`. Outermost
        // constructor only — `Vec<HashMap<…>>` has `<` right before.
        let mut k = j - 1;
        while k > 0
            && (code[k].text == "&"
                || code[k].text == "&&"
                || code[k].text == "mut"
                || code[k].kind == TokKind::Lifetime)
        {
            k -= 1;
        }
        if code[k].text == ":" && k >= 1 && code[k - 1].kind == TokKind::Ident {
            out.insert(code[k - 1].text.clone());
        }
    }
    out
}

/// If the expression ending just before the `.` at `dot` is a plain
/// binding (`x`) or a field chain rooted anywhere (`self.df`,
/// `outer.inner.df`), returns the final name (`x` / `df`). Calls,
/// indexing, and literals return `None` — the receiver is not a named
/// binding the symbol layer can type.
pub fn simple_receiver_name(code: &[Token], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let t = code.get(dot - 1)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    Some(t.text.clone())
}

/// Token index where the receiver expression of the `.` at `dot`
/// begins. Walks left over ident/`self` path segments, `::` paths, and
/// parenthesized / bracketed groups (`f(x)`, `xs[i]`).
pub fn receiver_start(code: &[Token], dot: usize) -> usize {
    let mut i = dot;
    loop {
        if i == 0 {
            return 0;
        }
        // Consume one primary segment ending at i-1.
        let prev = &code[i - 1];
        let seg_start = match prev.text.as_str() {
            ")" => match matching_open_paren_at(code, i - 1) {
                Some(open) => {
                    // `name(args)` — include the callee identifier.
                    if open > 0 && code[open - 1].kind == TokKind::Ident {
                        open - 1
                    } else {
                        open
                    }
                }
                None => return i,
            },
            "]" => match matching_open_bracket_at(code, i - 1) {
                Some(open) => open,
                None => return i,
            },
            _ if prev.kind == TokKind::Ident
                || prev.kind == TokKind::Int
                || prev.kind == TokKind::Str =>
            {
                i - 1
            }
            _ => return i,
        };
        // Continue left through `.` / `::` chains.
        if seg_start > 0 && (code[seg_start - 1].text == "." || code[seg_start - 1].text == "::") {
            i = seg_start - 1;
        } else {
            return seg_start;
        }
    }
}

/// Index of the token where the statement containing `idx` begins
/// (the token after the previous `;` / `{` / `}` at the same nesting
/// depth, or after an enclosing `(`).
pub fn stmt_start(code: &[Token], idx: usize) -> usize {
    let mut depth = 0i32;
    let mut i = idx;
    while i > 0 {
        let t = &code[i - 1];
        match t.text.as_str() {
            ")" | "]" | "}" if t.kind == TokKind::Punct => {
                if t.text == "}" && depth == 0 {
                    return i;
                }
                depth += 1;
            }
            "(" | "[" | "{" if t.kind == TokKind::Punct => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return i,
            _ => {}
        }
        i -= 1;
    }
    0
}

/// Index of the token terminating the statement containing `idx`
/// (the `;` / `}` at the same nesting depth, or an enclosing `)`).
pub fn stmt_end(code: &[Token], idx: usize) -> usize {
    let mut depth = 0i32;
    let mut i = idx;
    while i < code.len() {
        let t = &code[i];
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokKind::Punct => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Backward scan: index of the `(` matching the `)` at `close`.
fn matching_open_paren_at(code: &[Token], close: usize) -> Option<usize> {
    matching_backward(code, close, "(", ")")
}

/// Backward scan: index of the `[` matching the `]` at `close`.
fn matching_open_bracket_at(code: &[Token], close: usize) -> Option<usize> {
    matching_backward(code, close, "[", "]")
}

/// Backward scan: index of the `o` matching the `c` at `close`.
pub(crate) fn matching_backward(code: &[Token], close: usize, o: &str, c: &str) -> Option<usize> {
    let mut depth = 0i32;
    for i in (0..=close).rev() {
        if code[i].kind == TokKind::Punct {
            if code[i].text == c {
                depth += 1;
            } else if code[i].text == o {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
    }
    None
}

/// Forward scan: index of the `)` matching the `(` at `open`.
pub(crate) fn matching_close_paren(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Analysis, FileClass};

    fn syn(src: &str) -> (Analysis, FileSyntax) {
        let a = Analysis::build("mem.rs", src, FileClass::default());
        let s = a.syntax.clone();
        (a, s)
    }

    #[test]
    fn parses_fn_signatures_with_generics_and_where() {
        let (_, s) = syn(
            "impl Foo { fn get<K: Ord>(&self, k: K) -> Option<u32> where K: Clone { None } }\n\
             fn free() {}\n\
             trait T { fn sig(&self) -> u64; }",
        );
        assert_eq!(s.fns.len(), 3);
        assert_eq!(s.fns[0].name, "get");
        assert_eq!(s.fns[0].impl_ty.as_deref(), Some("Foo"));
        assert!(s.fns[0].body.is_some());
        assert_eq!(s.fns[1].name, "free");
        assert_eq!(s.fns[1].impl_ty, None);
        assert_eq!(s.fns[2].name, "sig");
        assert!(s.fns[2].body.is_none(), "trait signature has no body");
    }

    #[test]
    fn use_mask_covers_decl_to_semicolon() {
        let (a, s) = syn("use std::sync::{Mutex, Condvar};\nfn f() { let m = Mutex::new(0); }");
        let masked: Vec<&str> = a
            .code
            .iter()
            .zip(&s.use_mask)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"Mutex") && masked.contains(&"Condvar"));
        // The body's Mutex is *not* masked.
        let body_mutex = a
            .code
            .iter()
            .zip(&s.use_mask)
            .filter(|(t, _)| t.text == "Mutex")
            .map(|(_, &m)| m)
            .collect::<Vec<_>>();
        assert_eq!(body_mutex, vec![true, false]);
    }

    #[test]
    fn hash_typed_names_from_fields_lets_and_ctors() {
        let (_, s) = syn("struct S { df: HashMap<u32, u32>, names: Vec<String> }\n\
             fn f(seen: &mut HashSet<u64>) {\n\
               let acc: std::collections::HashMap<u32, f64> = HashMap::new();\n\
               let fresh = HashMap::with_capacity(8);\n\
               let nested: Vec<HashMap<u32, u32>> = Vec::new();\n\
             }");
        for name in ["df", "seen", "acc", "fresh"] {
            assert!(s.hash_names.contains(name), "missing {name}");
        }
        assert!(!s.hash_names.contains("names"));
        assert!(
            !s.hash_names.contains("nested"),
            "outermost constructor is Vec, not HashMap"
        );
    }

    #[test]
    fn receiver_helpers_resolve_chains() {
        let (a, _) = syn("fn f() { self.df.iter(); acc.keys(); self.shard(k).lock(); }");
        let dots: Vec<usize> = a
            .code
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == ".")
            .map(|(i, _)| i)
            .collect();
        // `self.df.iter()` — the dot before `iter`.
        assert_eq!(
            simple_receiver_name(&a.code, dots[1]).as_deref(),
            Some("df")
        );
        assert_eq!(a.code[receiver_start(&a.code, dots[1])].text, "self");
        // `acc.keys()`.
        assert_eq!(
            simple_receiver_name(&a.code, dots[2]).as_deref(),
            Some("acc")
        );
        // `self.shard(k).lock()` — receiver of `.lock` is a call: no
        // simple name, but receiver_start walks to `self`.
        assert_eq!(simple_receiver_name(&a.code, dots[4]), None);
        assert_eq!(a.code[receiver_start(&a.code, dots[4])].text, "self");
    }

    #[test]
    fn stmt_bounds_respect_nesting() {
        let (a, _) = syn("fn f() { let x = g(a, b); x.sort(); }");
        let comma = a.code.iter().position(|t| t.text == ",").expect("comma");
        let start = stmt_start(&a.code, comma);
        assert_eq!(a.code[start].text, "a", "enclosing paren bounds the scan");
        let x = a.code.iter().position(|t| t.text == "x").expect("x");
        assert_eq!(a.code[stmt_start(&a.code, x)].text, "let");
        assert_eq!(a.code[stmt_end(&a.code, x)].text, ";");
    }
}
