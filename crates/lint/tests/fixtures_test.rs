//! Golden-fixture tests for mp-lint.
//!
//! Every `tests/fixtures/<name>.rs` file deliberately seeds one rule
//! (or, for `clean.rs`, none) and is paired with a
//! `tests/fixtures/<name>.expected` snapshot of the diagnostics it must
//! produce, one `rule line level` triple per line in report order.
//! Fixtures are linted under a library-crate classification so every
//! rule (including L3) applies; the workspace walker skips the
//! directory, so the violations never reach CI.
//!
//! To regenerate the snapshots after changing a rule or a fixture:
//!
//! ```text
//! MP_LINT_BLESS=1 cargo test -p mp-lint --test fixtures_test
//! ```
//!
//! The self-check test at the bottom lints the real workspace checkout
//! and is the in-tree equivalent of CI's `mp-lint --deny-all` gate.

use mp_lint::{lint_source, lint_workspace, Diagnostic, FileClass, Level};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints one fixture under the strictest classification: a library
/// crate's non-test source file.
fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let path = fixtures_dir().join(name);
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let class = FileClass {
        l3_library: true,
        l8_library: true,
        l9_hot_path: true,
        l10_library: true,
        l13_deterministic: true,
        // l11_relaxed_ok stays false: fixtures are held to the strict
        // acquire/release discipline, like unregistered modules.
        ..FileClass::default()
    };
    lint_source(name, &source, class)
}

fn snapshot_line(d: &Diagnostic) -> String {
    let level = match d.level {
        Level::Deny => "deny",
        Level::Warn => "warn",
    };
    format!("{} {} {}", d.rule, d.line, level)
}

fn fixture_names() -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(fixtures_dir())
        .expect("tests/fixtures directory exists in the checkout")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no fixtures found");
    names
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let bless = std::env::var_os("MP_LINT_BLESS").is_some();
    for name in fixture_names() {
        let actual: Vec<String> = lint_fixture(&name).iter().map(snapshot_line).collect();
        let expected_path = fixtures_dir().join(name.replace(".rs", ".expected"));
        if bless {
            let mut content = actual.join("\n");
            if !content.is_empty() {
                content.push('\n');
            }
            fs::write(&expected_path, content).expect("snapshot file is writable");
            continue;
        }
        let expected_text = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "missing snapshot {} — run with MP_LINT_BLESS=1 to create it",
                expected_path.display()
            )
        });
        let expected: Vec<String> = expected_text.lines().map(str::to_string).collect();
        assert_eq!(
            actual, expected,
            "fixture {name} diagnostics drifted from its .expected snapshot \
             (re-bless with MP_LINT_BLESS=1 if the change is intended)"
        );
    }
}

#[test]
fn every_rule_is_seeded_by_some_fixture() {
    // The fixture corpus is the linter's regression net: each rule id
    // must be exercised by at least one deliberate violation, so a rule
    // that silently stops firing turns a snapshot red.
    let mut seeded = BTreeSet::new();
    for name in fixture_names() {
        for d in lint_fixture(&name) {
            seeded.insert(d.rule);
        }
    }
    for rule in [
        "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10", "L11", "L12", "L13", "A0",
        "A1",
    ] {
        assert!(seeded.contains(rule), "no fixture seeds rule {rule}");
    }
}

#[test]
fn l12_fixture_names_the_full_lock_chain() {
    // The acceptance contract for the lock graph: the seeded two-lock
    // cycle is found through the one-level call propagation, and the
    // diagnostic names every lock in the cycle, in order.
    let diags = lint_fixture("l12_lock_order.rs");
    let l12: Vec<_> = diags.iter().filter(|d| d.rule == "L12").collect();
    assert_eq!(l12.len(), 1, "exactly one cycle: {diags:?}");
    assert!(
        l12[0]
            .message
            .contains("local::Pair::left → local::Pair::right → local::Pair::left"),
        "full chain named: {}",
        l12[0].message
    );
}

#[test]
fn clean_fixture_is_clean() {
    let diags = lint_fixture("clean.rs");
    assert!(diags.is_empty(), "clean.rs produced {diags:?}");
}

#[test]
fn violating_fixtures_fail_a_deny_all_gate() {
    // The CLI promotes warnings under --deny-all; the same promotion
    // applied to any violating fixture must yield a non-zero error
    // count (the "exits non-zero on fixtures" contract).
    for name in fixture_names() {
        if name == "clean.rs" {
            continue;
        }
        let denies_after_promotion = lint_fixture(&name).len();
        assert!(
            denies_after_promotion > 0,
            "{name} is expected to violate its rule"
        );
    }
}

#[test]
fn workspace_self_check_is_deny_clean() {
    // The tree this test runs in must itself pass the CI gate: no
    // deny-level findings and no unpromoted warnings anywhere.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves from the lint crate");
    let mut report = lint_workspace(&root).expect("workspace walk succeeds");
    report.deny_all();
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker regression?",
        report.files_scanned
    );
    assert_eq!(
        report.denies(),
        0,
        "workspace has lint findings:\n{}",
        report.render_human()
    );
}
