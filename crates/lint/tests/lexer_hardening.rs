//! Hardening tests for the hand-rolled lexer.
//!
//! The lexer underpins every rule: a single mis-lexed raw string or
//! comment silently blinds (or falsely triggers) the whole analysis, so
//! this suite attacks exactly the constructs that break naive scanners
//! — nested block comments, raw strings with `#` guards hiding `//` and
//! `"`, byte/raw-byte strings, lifetimes vs. char literals, and numeric
//! literals with underscore separators.
//!
//! The backbone is a *round-trip* invariant: the lexer drops only
//! inter-token whitespace, so walking the source and matching each
//! token's text verbatim (skipping whitespace between tokens) must
//! consume the entire input, and the recorded 1-based line/column of
//! every token must agree with the walk. The invariant holds for
//! arbitrary input — malformed literals degrade but stay lossless — so
//! the property tests feed both structured token soup and raw garbage.

use mp_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Replays `src` against its own token stream: skips whitespace, then
/// requires each token's text verbatim at the cursor with the token's
/// recorded line/col, and finally requires only whitespace to remain.
/// Returns a description of the first divergence, if any.
fn reassemble(src: &str) -> Result<(), String> {
    let chars: Vec<char> = src.chars().collect();
    let mut pos = 0usize;
    let (mut line, mut col) = (1u32, 1u32);
    let advance = |pos: &mut usize, line: &mut u32, col: &mut u32| {
        if chars[*pos] == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *pos += 1;
    };
    for (i, tok) in lex(src).into_iter().enumerate() {
        while pos < chars.len() && chars[pos].is_whitespace() {
            advance(&mut pos, &mut line, &mut col);
        }
        if (line, col) != (tok.line, tok.col) {
            return Err(format!(
                "token #{i} {:?} recorded at {}:{} but walk reached {line}:{col}",
                tok.text, tok.line, tok.col
            ));
        }
        for want in tok.text.chars() {
            if pos >= chars.len() {
                return Err(format!("token #{i} {:?} runs past end of input", tok.text));
            }
            if chars[pos] != want {
                return Err(format!(
                    "token #{i} {:?} diverges from source at {line}:{col}: \
                     expected {want:?}, source has {:?}",
                    tok.text, chars[pos]
                ));
            }
            advance(&mut pos, &mut line, &mut col);
        }
    }
    while pos < chars.len() {
        if !chars[pos].is_whitespace() {
            return Err(format!(
                "source char {:?} at {line}:{col} not covered by any token",
                chars[pos]
            ));
        }
        advance(&mut pos, &mut line, &mut col);
    }
    Ok(())
}

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
}

fn code_texts(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.text)
        .collect()
}

// ---------------------------------------------------------------------
// Targeted cases
// ---------------------------------------------------------------------

#[test]
fn block_comments_nest_to_depth_three() {
    let src = "a /* one /* two /* three */ unwrap() */ == */ b";
    assert_eq!(code_texts(src), vec!["a", "b"]);
    let toks = lex(src);
    assert_eq!(toks[1].kind, TokKind::BlockComment);
    assert!(toks[1].text.contains("three"));
    reassemble(src).unwrap();
}

#[test]
fn unterminated_block_comment_swallows_the_tail_losslessly() {
    // Depth never returns to zero: the comment must run to EOF instead
    // of panicking or resynchronizing mid-comment.
    let src = "before /* open /* still open */ trailing == tokens";
    assert_eq!(code_texts(src), vec!["before"]);
    reassemble(src).unwrap();
}

#[test]
fn raw_string_guards_hide_comment_markers_and_quotes() {
    let src = r###"let s = r#"x // not a comment " still inside == here"#; after"###;
    let toks = lex(src);
    assert!(
        toks.iter().all(|t| !t.is_comment()),
        "`//` inside a raw string must not open a comment"
    );
    let s = toks.iter().find(|t| t.kind == TokKind::Str).expect("str");
    assert_eq!(
        s.str_content(),
        Some(r#"x // not a comment " still inside == here"#)
    );
    // `==` lives inside the literal, not the code stream.
    assert!(!code_texts(src).contains(&"==".to_string()));
    assert!(code_texts(src).contains(&"after".to_string()));
    reassemble(src).unwrap();
}

#[test]
fn double_guard_raw_string_ignores_single_guard_closer() {
    // `"#` inside an `r##"…"##` literal is content, not a terminator.
    let src = r####"r##"inner "# not closed yet"## tail"####;
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokKind::Str);
    assert_eq!(toks[0].str_content(), Some(r##"inner "# not closed yet"##));
    assert_eq!(toks[1].text, "tail");
    reassemble(src).unwrap();
}

#[test]
fn byte_and_raw_byte_strings_lex_as_single_literals() {
    let src = r###"b"esc \" quote" br#"raw // "byte" content"# c"cstr" cr"craw" end"###;
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokKind::Str);
    assert_eq!(toks[0].text, r#"b"esc \" quote""#);
    assert_eq!(toks[1].kind, TokKind::Str);
    assert_eq!(toks[1].str_content(), Some(r#"raw // "byte" content"#));
    assert_eq!(toks[2].kind, TokKind::Str);
    assert_eq!(toks[3].kind, TokKind::Str);
    assert_eq!(toks[4].text, "end");
    reassemble(src).unwrap();
}

#[test]
fn prefix_identifiers_do_not_start_literals() {
    // `r`, `b`, `br` as plain identifiers (no quote follows) and a
    // variable named `rb` must stay idents.
    assert_eq!(
        code_texts("r = b + br - rb"),
        vec!["r", "=", "b", "+", "br", "-", "rb"]
    );
    // `r#` without a quote is not a raw string opener either (raw
    // identifier syntax); losslessness is what matters here.
    reassemble("let r#match = 1;").unwrap();
}

#[test]
fn lifetimes_and_char_literals_disambiguate() {
    let toks = kinds("<'a, '_> 'static 'x' '\\'' '\\u{1F600}' ' '");
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Lifetime)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'_", "'static"]);
    let chars: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Char)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(chars, vec!["'x'", r"'\''", r"'\u{1F600}'", "' '"]);
}

#[test]
fn lifetime_bound_then_char_on_one_line() {
    // The classic killer: a lifetime directly before a char literal.
    let src = "fn f<'a>(x: &'a u8) { let c = 'q'; }";
    let toks = lex(src);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Char && t.text == "'q'"));
    reassemble(src).unwrap();
}

#[test]
fn underscored_numeric_literals_keep_their_class() {
    let toks =
        kinds("1_000 1_000.000_1 1_0e1_0 6.02e2_3 0xFF_FF 0b1010_1010 1_000_000u64 2_5.0f32");
    let want = [
        (TokKind::Int, "1_000"),
        (TokKind::Float, "1_000.000_1"),
        (TokKind::Float, "1_0e1_0"),
        (TokKind::Float, "6.02e2_3"),
        (TokKind::Int, "0xFF_FF"),
        (TokKind::Int, "0b1010_1010"),
        (TokKind::Int, "1_000_000u64"),
        (TokKind::Float, "2_5.0f32"),
    ];
    assert_eq!(toks.len(), want.len());
    for (tok, (k, t)) in toks.iter().zip(want) {
        assert_eq!(tok, &(k, t.to_string()));
    }
}

#[test]
fn composite_nasty_source_reassembles() {
    let src = r####"
//! doc // nested markers /* not a block */
fn main<'a>() {
    let raw = r##"guard "# inside // and "quotes""##;
    let b = b"\"bytes\"";
    /* outer /* inner 'x' "str" */ 1.0e-3 */
    let f = 1_234.567_8e1_0f64;
    let c: char = '\u{2764}';
    let lt: &'static str = "s";
    if f >= 0.0 && raw.len() >>= b.len() { }
}
"####;
    reassemble(src).unwrap();
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

/// Tricky fragments the generator interleaves; each is a shape that has
/// historically broken token scanners.
const FRAGMENTS: &[&str] = &[
    "/* outer /* inner /* deepest */ */ */",
    "/* unbalanced tail",
    "// line with \" and 'q' and /*",
    "r#\"contains // and \" quote\"#",
    "r##\"guard \"# inside\"##",
    "br#\"raw bytes \"with\" quotes\"#",
    "b\"byte \\\" string\"",
    "c\"cstr\"",
    "cr\"craw\"",
    "\"plain \\\"escaped\\\" string\"",
    "\"unterminated",
    "'a",
    "'_",
    "'static",
    "'x'",
    "'\\n'",
    "'\\''",
    "'\\u{1F600}'",
    "1_000.000_1",
    "6.022e2_3",
    "0xFF_FF",
    "0b1010_1010",
    "1.0f64",
    "7_u32",
    "1.",
    "1..5",
    "1.max",
    "ident",
    "_under",
    "r",
    "br",
    "x1",
    "::",
    "->",
    "..=",
    ">>=",
    "<<",
    "==",
    "&&",
    "λ",
    "€",
];

const SEPARATORS: &[&str] = &[" ", "\n", "\t", "\n    ", "  "];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whitespace-separated soup of hostile fragments: the lexer never
    /// panics, loses nothing, and records exact positions. Line
    /// comments may legitimately swallow same-line successors and
    /// unterminated literals run to EOF — the invariant is verbatim
    /// coverage, which holds regardless of how fragments merge.
    #[test]
    fn fragment_soup_reassembles(
        picks in proptest::collection::vec(
            (0usize..FRAGMENTS.len(), 0usize..SEPARATORS.len()),
            0..32,
        )
    ) {
        let mut src = String::new();
        for (frag, sep) in &picks {
            src.push_str(FRAGMENTS[*frag]);
            src.push_str(SEPARATORS[*sep]);
        }
        let r = reassemble(&src);
        prop_assert!(r.is_ok(), "{:?}: {}", src, r.unwrap_err());
    }

    /// Raw garbage — printable ASCII plus occasional multibyte chars,
    /// no token structure at all — must still lex losslessly.
    #[test]
    fn arbitrary_soup_reassembles(
        lines in proptest::collection::vec(".*", 0..6)
    ) {
        let src = lines.join("\n");
        let r = reassemble(&src);
        prop_assert!(r.is_ok(), "{:?}: {}", src, r.unwrap_err());
    }

    /// Quote-heavy garbage: random interleavings of the characters that
    /// drive the string/char/comment state machines.
    #[test]
    fn delimiter_storm_reassembles(
        storm in proptest::collection::vec("['\"#rbc/*\\\\ ]{0,12}", 0..6)
    ) {
        let src = storm.join("\n");
        let r = reassemble(&src);
        prop_assert!(r.is_ok(), "{:?}: {}", src, r.unwrap_err());
    }
}
