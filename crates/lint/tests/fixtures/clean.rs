//! Fixture that every rule accepts: the sanctioned spellings of the
//! patterns the other fixtures violate. Not compiled — lexed and linted
//! by `fixtures_test.rs`.

pub fn tolerance_compare(p: f64, tol: f64) -> bool {
    (p - 0.5).abs() <= tol
}

pub fn checked_narrowing(n: usize) -> u32 {
    u32::try_from(n).expect("fixture counts stay far below u32::MAX")
}

pub fn widening(n: u32) -> f64 {
    f64::from(n)
}

// TODO(#7): a tracked marker is not a finding
pub fn tracked() {}
