//! Fixture seeding rule L7: deferred-work markers without an issue
//! reference. Not compiled — lexed and linted by `fixtures_test.rs`.

// TODO: tighten this bound once the estimator handles empty summaries
pub fn pending_work() {}

// FIXME this comment has no reference either
pub fn broken_thing() {}

// TODO(#42): tracked markers are fine
pub fn tracked_work() {}

pub fn mentioning_octodo_in_prose_is_fine() {}
