//! Fixture seeding rule L1: float `==` / `!=` in non-test code.
//! Not compiled — lexed and linted by `fixtures_test.rs`.

pub fn bad_eq(p: f64) -> bool {
    p == 0.0
}

pub fn bad_ne(p: f64) -> bool {
    p != 1.0
}

pub fn bad_const_compare(x: f64) -> bool {
    x == f64::INFINITY
}

pub fn suppressed(p: f64) -> bool {
    // mp-lint: allow(L1): fixture demonstrating a justified suppression
    p == 0.5
}

pub fn integer_compare_is_fine(n: u32) -> bool {
    n == 0
}

#[cfg(test)]
mod tests {
    pub fn exact_assertions_are_fine_in_tests(p: f64) -> bool {
        p == 0.25
    }
}
