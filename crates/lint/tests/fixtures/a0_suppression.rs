//! Fixture seeding meta-rule A0: malformed suppression comments. A
//! broken suppression must not silence anything, so the L1 violation
//! below is also expected to fire. Not compiled — lexed and linted by
//! `fixtures_test.rs`.

pub fn unjustified_suppression(p: f64) -> bool {
    // mp-lint: allow(L1)
    p == 0.0
}

// mp-lint: allow(L99): there is no such rule
pub fn unknown_rule() {}

// mp-lint: deny(L1): wrong verb entirely
pub fn wrong_verb() {}
