//! Fixture seeding rule L9: shared locks in serve-hot-path modules.
//! Not compiled — lexed and linted by `fixtures_test.rs`.

use std::sync::{Condvar, Mutex, RwLock};

pub struct HotState {
    slots: Mutex<Vec<u64>>,
    readers: RwLock<u64>,
    wake: Condvar,
}

// mp-lint: allow(L9): O(1) handoff cell, never held across a probe
pub fn sanctioned(cell: &Mutex<u64>) -> bool {
    cell.try_lock().is_ok()
}

pub fn grows_the_convoy() -> Mutex<()> {
    Mutex::new(())
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    #[test]
    fn locks_in_tests_are_fine() {
        let m = Mutex::new(0u64);
        let _ = m.lock();
    }
}
