//! Fixture seeding rule L6: a distribution constructor with no
//! normalization `debug_assert`. Not compiled — lexed and linted by
//! `fixtures_test.rs`.

pub struct Discrete;

pub fn unchecked_constructor() -> Discrete {
    Discrete
}

pub fn unchecked_fallible() -> Option<Discrete> {
    Some(Discrete)
}

pub fn audited_constructor_is_fine() -> Discrete {
    let d = Discrete;
    debug_assert!(true, "mass sums to one by construction");
    d
}

pub fn delegating_helper_is_fine() -> Discrete {
    let d = audited_constructor_is_fine();
    d.debug_assert_normalized();
    d
}

pub fn borrowing_accessor_is_fine(d: &Discrete) -> &Discrete {
    d
}
