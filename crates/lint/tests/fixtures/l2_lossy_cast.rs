//! Fixture seeding rule L2: lossy `as` casts on counts and indices.
//! Not compiled — lexed and linted by `fixtures_test.rs`.

pub fn narrowing_cast(n: usize) -> u32 {
    n as u32
}

pub fn float_to_int_cast(x: f64) -> u64 {
    x.round() as u64
}

pub fn float_literal_cast() -> usize {
    2.5 as usize
}

pub fn widening_is_fine(n: u32) -> u64 {
    n as u64
}

pub fn int_to_float_is_fine(n: u64) -> f64 {
    n as f64
}

pub fn suppressed(n: usize) -> u8 {
    // mp-lint: allow(L2): fixture — the domain is 0..=3 by construction
    n as u8
}
