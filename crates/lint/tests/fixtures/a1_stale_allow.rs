//! Seeds A1: a syntactically valid, fully justified `allow(…)` whose
//! covered lines produce no finding for the named rule — a dead audit
//! entry that must itself be flagged.

// mp-lint: allow(L1): both sides are exact small integers in f64 (stale: no float == below)
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}

// A *live* suppression for contrast — it covers a real finding, so A1
// must stay quiet about it:

pub fn live(v: Option<u32>) -> u32 {
    // mp-lint: allow(L3): fixture demonstrates a live allow staying un-flagged
    v.unwrap()
}

// Partially stale: L7 fires on the covered line (untracked TODO), L2
// never does — A1 must name only the dead half of the list.

pub fn half_live() {
    // mp-lint: allow(L2, L7): scaffolding note tracked informally in this fixture
    // TODO: make this fixture even meaner
}
