//! Fixture seeding rule L5: an item gated on `feature = "parallel"`
//! with no `not(feature = "parallel")` twin anywhere in the file, so the
//! item vanishes from serial builds. Not compiled — lexed and linted by
//! `fixtures_test.rs`.

#[cfg(feature = "parallel")]
pub fn parallel_only_api() {}

pub fn block_position_gate_is_fine() -> u32 {
    #[cfg(feature = "parallel")]
    {
        return 2;
    }
    1
}

pub fn cfg_macro_is_fine() -> bool {
    cfg!(feature = "parallel")
}

#[cfg(feature = "serde")]
pub fn other_features_are_fine() {}
