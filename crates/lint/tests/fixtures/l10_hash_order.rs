//! Deliberately violates L10: hash-order iteration in library code.
//!
//! The float accumulation below is the PR 4 `cosine_topk` bug in
//! miniature — the sum's rounding depends on `RandomState`'s
//! per-process seed.

use std::collections::HashMap;

pub fn sum_scores(scores: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for v in scores.values() {
        total += v;
    }
    total
}

pub fn keys_in_hash_order(index: &HashMap<u32, Vec<u32>>) -> Vec<u32> {
    index.keys().copied().collect()
}

pub struct Tally {
    counts: HashMap<u32, u32>,
}

impl Tally {
    pub fn emit(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (k, v) in &self.counts {
            out.push((*k, *v));
        }
        out
    }
}

// The compliant shapes, for contrast — none of these may fire:

pub fn sorted_keys(index: &HashMap<u32, Vec<u32>>) -> Vec<u32> {
    let mut ks: Vec<u32> = index.keys().copied().collect();
    ks.sort_unstable();
    ks
}

pub fn rekeyed(index: &HashMap<u32, u32>) -> std::collections::BTreeMap<u32, u32> {
    index.iter().map(|(&k, &v)| (k, v)).collect::<std::collections::BTreeMap<_, _>>()
}

pub fn allowed_total(counts: &HashMap<u32, u32>) -> u64 {
    // mp-lint: allow(L10): u32 increments commute — order cannot change the total
    counts.values().map(|&v| u64::from(v)).sum()
}
