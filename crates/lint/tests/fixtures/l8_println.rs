//! Fixture seeding rule L8: print-family macros in library code.
//! Not compiled — lexed and linted by `fixtures_test.rs`.

pub fn narrates_progress(step: usize) {
    println!("step {step} done");
}

pub fn leaks_debug_state(x: u64) -> u64 {
    dbg!(x)
}

pub fn shouts_to_stderr(msg: &str) {
    eprintln!("warning: {msg}");
    eprint!("…");
}

pub fn partial_line() {
    print!("no newline");
}

pub fn writing_to_a_sink_is_fine(out: &mut String, v: f64) {
    use std::fmt::Write;
    let _ = writeln!(out, "v = {v}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn printing_in_tests_is_fine() {
        println!("debugging a test is allowed");
    }
}
