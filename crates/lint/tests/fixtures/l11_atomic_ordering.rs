//! Deliberately violates L11: this fixture is *not* a registered
//! counter-only module, so Relaxed is off-limits, and its
//! acquire/release uses are half-protocols or missing their
//! published-invariant comments.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Flags {
    ready: AtomicBool,
    epoch: AtomicU64,
}

impl Flags {
    pub fn relaxed_outside_registry(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed)
    }

    pub fn store_with_no_reader(&self) {
        // publishes the parked state — but nothing acquires it, ever
        self.ready.store(true, Ordering::Release);
    }

    pub fn load_without_invariant(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

// The compliant shape, for contrast — a commented, paired protocol:

pub struct Gate {
    open: AtomicBool,
}

impl Gate {
    pub fn open(&self) {
        // publishes everything written before the flip: pairs with is_open()
        self.open.store(true, Ordering::Release);
    }

    pub fn is_open(&self) -> bool {
        // pairs with the Release store in open()
        self.open.load(Ordering::Acquire)
    }
}
