//! Fixture seeding rule L3: `unwrap()` / unjustified `expect()` in
//! library crates. Not compiled — lexed and linted by `fixtures_test.rs`
//! under a library-crate classification.

pub fn bare_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn short_expect(v: Option<u32>) -> u32 {
    v.expect("oops")
}

pub fn justified_expect_is_fine(v: Option<u32>) -> u32 {
    v.expect("fixture values are always present by construction")
}

pub fn format_expect_is_fine(v: Option<u32>, k: usize) -> u32 {
    v.expect(&format!("missing value for key {k}"))
}

pub fn non_panicking_is_fine(v: Option<u32>) -> u32 {
    v.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    pub fn unwrap_is_fine_in_tests(v: Option<u32>) -> u32 {
        v.unwrap()
    }
}
