//! Deliberately violates L13: ambient nondeterminism sources in a file
//! classified as deterministic-contract code. Every value below is a
//! hidden input that varies across runs while type-checking fine.

pub fn elapsed_guess() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

pub fn wall_clock() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn schedule_dependent_tag() -> String {
    format!("{:?}", std::thread::current().id())
}

pub fn ambient_config() -> Option<String> {
    std::env::var("MP_FIXTURE_KNOB").ok()
}

pub fn seeded_per_process() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}
