//! Deliberately violates L12: `left_then_right` acquires
//! `left → right` while `right_then_left` acquires `right → left` (the
//! second hop hidden one call deep in `grab_left`, which the call-graph
//! propagation must surface). Two code paths, opposite orders — the
//! schedule-dependent deadlock `queue_stress.rs` can only hope to
//! catch at runtime.

pub struct Pair;

impl Pair {
    pub fn left_then_right(&self) {
        if let Ok(a) = self.left.lock() {
            if let Ok(b) = self.right.lock() {
                use_both(&a, &b);
            }
        }
    }

    pub fn right_then_left(&self) {
        if let Ok(b) = self.right.lock() {
            self.grab_left();
            keep(&b);
        }
    }

    fn grab_left(&self) {
        if let Ok(a) = self.left.lock() {
            keep(&a);
        }
    }
}

fn use_both<T>(_a: &T, _b: &T) {}

fn keep<T>(_g: &T) {}
