//! Fixture seeding rule L4: thread creation outside `mp-core::par`.
//! Not compiled — lexed and linted by `fixtures_test.rs`.

pub fn direct_spawn() {
    std::thread::spawn(|| {});
}

pub fn scoped_spawn() {
    std::thread::scope(|_s| {});
}

pub fn named_builder() {
    let _ = std::thread::Builder::new();
}

pub fn querying_parallelism_is_fine() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
