//! The CLI commands, as testable functions returning their output text.

use crate::state::{self, StateConfig, StateError};
use mp_core::probing::{
    ByEstimatePolicy, GreedyPolicy, ProbePolicy, RandomPolicy, UncertaintyPolicy,
};
use mp_core::rd::derive_all_rds;
use mp_core::selection::{baseline_select, best_set};
use mp_core::{AproConfig, CorrectnessMetric, EdLibrary, Metasearcher, RelevancyDef};
use mp_corpus::ScenarioKind;
use mp_eval::report::{fmt3, TextTable};
use mp_text::Analyzer;
use mp_workload::Query;
use std::path::Path;

/// `metaprobe generate`: writes the testbed recipe into the state dir.
pub fn run_generate(
    dir: &Path,
    kind: ScenarioKind,
    seed: u64,
    scale: f64,
    n_databases: usize,
) -> Result<String, StateError> {
    let config = StateConfig::default_for(kind, seed, scale, n_databases);
    state::save_config(dir, &config)?;
    // Build once to validate and report.
    let st = state::load_state(dir)?;
    let mut out = format!(
        "initialized {} ({:?}, seed {seed}, scale {scale})\n",
        dir.display(),
        kind
    );
    out.push_str(&format!(
        "{} databases, {} train / {} test queries\nnext: metaprobe train --state {}\n",
        st.testbed.n_databases(),
        st.testbed.split.train.len(),
        st.testbed.split.test.len(),
        dir.display()
    ));
    Ok(out)
}

/// `metaprobe train`: trains the ED library and persists it.
pub fn run_train(dir: &Path) -> Result<String, StateError> {
    let st = state::load_state(dir)?;
    // The testbed's library was already trained during the rebuild;
    // persist it (identical to retraining — everything is seeded).
    mp_core::save_library(&st.testbed.library, state::library_path(dir))
        .map_err(|e| StateError::Io(std::io::Error::other(e.to_string())))?;
    let probes = st.testbed.split.train.len() * st.testbed.n_databases();
    Ok(format!(
        "trained on {} queries × {} databases ({} offline probes)\nlibrary saved to {}\n",
        st.testbed.split.train.len(),
        st.testbed.n_databases(),
        probes,
        state::library_path(dir).display()
    ))
}

/// `metaprobe info`: databases, sizes, and per-leaf training coverage.
pub fn run_info(dir: &Path) -> Result<String, StateError> {
    let st = state::load_state(dir)?;
    let mut table = TextTable::new(
        format!("state {}", dir.display()),
        &["database", "documents", "trained leaves"],
    );
    let lib: Option<&EdLibrary> = st.trained.as_ref();
    for i in 0..st.testbed.n_databases() {
        let db = st.testbed.mediator.db(i);
        let leaves = lib
            .map(|l| l.sample_counts(i).len().to_string())
            .unwrap_or_else(|| "-".to_string());
        table.row(&[
            db.name().to_string(),
            db.size_hint()
                .map(|s| s.to_string())
                .unwrap_or_else(|| "?".into()),
            leaves,
        ]);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "model: {}\n",
        if st.trained.is_some() {
            "trained (library.json)"
        } else {
            "untrained — run `metaprobe train`"
        }
    ));
    Ok(out)
}

/// Builds a probing policy by name.
pub fn policy_by_name(name: &str, seed: u64) -> Option<Box<dyn ProbePolicy>> {
    match name {
        "greedy" => Some(Box::new(GreedyPolicy)),
        "random" => Some(Box::new(RandomPolicy::new(seed))),
        "by-estimate" => Some(Box::new(ByEstimatePolicy)),
        "max-uncertainty" => Some(Box::new(UncertaintyPolicy)),
        _ => None,
    }
}

/// `metaprobe query`: answers one keyword query with certainty-controlled
/// selection, printing the decision trail.
pub fn run_query(
    dir: &Path,
    text: &str,
    k: usize,
    threshold: f64,
    policy_name: &str,
) -> Result<String, StateError> {
    let st = state::load_state(dir)?;
    let library = st.library()?.clone();
    let Some(query) = Query::parse(text, &Analyzer::plain(), st.testbed.model.vocab()) else {
        return Ok(format!(
            "no known terms in {text:?} — try `metaprobe suggest` for vocabulary samples\n"
        ));
    };
    let Some(mut policy) = policy_by_name(policy_name, 0) else {
        return Ok(format!(
            "unknown policy {policy_name:?} (greedy | random | by-estimate | max-uncertainty)\n"
        ));
    };

    let ms = Metasearcher::with_library(
        st.testbed.mediator.clone(),
        Box::new(mp_core::IndependenceEstimator),
        RelevancyDef::DocFrequency,
        library,
    );
    let mut out = format!("query: \"{}\"\n", query.display(st.testbed.model.vocab()));

    let baseline = ms.select_baseline(&query, k);
    out.push_str(&format!(
        "baseline would pick: {:?}\n",
        baseline
            .iter()
            .map(|&i| ms.mediator().db(i).name())
            .collect::<Vec<_>>()
    ));

    let result = ms.search(
        &query,
        AproConfig {
            k,
            threshold,
            metric: CorrectnessMetric::Partial,
            max_probes: None,
        },
        policy.as_mut(),
        10,
    );
    for record in &result.outcome.probes {
        out.push_str(&format!(
            "probed {:16} → actual {:>8.1}, certainty {:.2}\n",
            ms.mediator().db(record.db).name(),
            record.actual,
            record.expected_after
        ));
    }
    out.push_str(&format!(
        "selected {:?} with certainty {:.2} after {} probe(s)\n",
        result
            .outcome
            .selected
            .iter()
            .map(|&i| ms.mediator().db(i).name())
            .collect::<Vec<_>>(),
        result.outcome.expected,
        result.outcome.n_probes()
    ));
    out.push_str(&format!("{} fused result document(s)\n", result.hits.len()));
    Ok(out)
}

/// `metaprobe suggest`: prints example queries from the held-out trace
/// (useful because the synthetic vocabulary is pseudo-words).
pub fn run_suggest(dir: &Path, n: usize) -> Result<String, StateError> {
    let st = state::load_state(dir)?;
    let mut out = String::from("example queries from the held-out trace:\n");
    for q in st.testbed.split.test.queries().iter().take(n) {
        out.push_str(&format!("  {}\n", q.display(st.testbed.model.vocab())));
    }
    Ok(out)
}

/// `metaprobe serve`: drives a scripted query stream from the held-out
/// trace through the concurrent serving front-end and reports cache
/// and latency statistics.
///
/// The stream takes the first `n_unique` test queries and plays them
/// `repeat` times round-robin — a repeated-query workload, the shape
/// the result cache exists for. Each pass over the unique queries is
/// one rolling-window tick, so the stats line can report windowed
/// p50/p99 next to the cumulative quantiles. With `trace` (or a
/// `trace_dump` path) every request runs under a per-request trace and
/// the flight recorder's worst waterfalls are rendered (and dumped as
/// `mp-obs-trace/1` JSON).
///
/// `batch_window > 1` lets each worker drain up to that many queued
/// requests into one term-sharing batch (bit-identical results, fewer
/// postings traversals); `shed_p99_ms` arms the SLO scheduler, which
/// sheds deadlined requests whose slack the rolling p99 would blow.
/// The scripted stream is deadline-free, so shedding only shows up
/// when driving the server through code that sets deadlines.
#[allow(clippy::too_many_arguments)]
pub fn run_serve(
    dir: &Path,
    workers: usize,
    shards: usize,
    cache_cap: usize,
    queue_cap: usize,
    batch_window: usize,
    shed_p99_ms: Option<u64>,
    n_unique: usize,
    repeat: usize,
    k: usize,
    threshold: f64,
    policy_name: &str,
    trace: bool,
    trace_dump: Option<&Path>,
) -> Result<String, StateError> {
    use mp_serve::{Backend, PolicySpec, ServeConfig, ServeRequest, Server};

    let st = state::load_state(dir)?;
    let library = st.library()?.clone();
    let Some(policy) = PolicySpec::parse(policy_name, 0) else {
        return Ok(format!(
            "unknown policy {policy_name:?} (greedy | random | by-estimate | max-uncertainty)\n"
        ));
    };
    let unique: Vec<Query> = st
        .testbed
        .split
        .test
        .queries()
        .iter()
        .take(n_unique.max(1))
        .cloned()
        .collect();

    // `--shards 1` keeps the flat single-owner engine; anything larger
    // partitions the fleet by FNV-hashed database name and serves over
    // the scatter-gather backend (value-identical by the shard layer's
    // equivalence contract).
    let shards = shards.max(1).min(st.testbed.mediator.len());
    let backend = if shards > 1 {
        Backend::Sharded(
            mp_core::ShardedMetasearcher::with_library(
                &st.testbed.mediator,
                std::sync::Arc::new(mp_core::IndependenceEstimator),
                RelevancyDef::DocFrequency,
                &library,
                &mp_core::ShardAssignment::ByNameFnv(shards),
            )
            .shared(),
        )
    } else {
        Backend::Flat(
            Metasearcher::with_library(
                st.testbed.mediator.clone(),
                Box::new(mp_core::IndependenceEstimator),
                RelevancyDef::DocFrequency,
                library,
            )
            .shared(),
        )
    };
    let tracing = trace || trace_dump.is_some();
    let server = Server::with_backend(
        backend,
        ServeConfig {
            workers: workers.max(1),
            queue_cap: queue_cap.max(1),
            ..ServeConfig::new(workers.max(1), cache_cap)
        }
        .with_batch_window(batch_window.max(1))
        .with_shed_p99_ms(shed_p99_ms)
        .with_trace(tracing),
    );

    let start = std::time::Instant::now();
    // One submit-and-wait pass per repeat, each pass a window tick.
    let responses: Vec<Result<mp_serve::ServeResponse, mp_serve::ServeError>> =
        server.run(|client| {
            let mut out = Vec::with_capacity(unique.len() * repeat.max(1));
            for _ in 0..repeat.max(1) {
                let tickets: Vec<_> = unique
                    .iter()
                    .map(|q| {
                        client.submit(
                            ServeRequest::new(q.clone(), k, threshold).with_policy(policy.clone()),
                        )
                    })
                    .collect();
                out.extend(
                    tickets
                        .into_iter()
                        .map(|t| t.and_then(mp_serve::Ticket::wait)),
                );
                server.tick_window();
            }
            out
        });
    let wall = start.elapsed();
    let errors = responses.iter().filter(|r| r.is_err()).count();
    let stats = server.stats();
    let qps = responses.len() as f64 / wall.as_secs_f64().max(1e-9);

    let mut out = format!(
        "served {} queries ({} unique × {}) with {} worker(s), {} shard(s), cache cap {}\n",
        responses.len(),
        unique.len(),
        repeat.max(1),
        workers.max(1),
        shards,
        cache_cap,
    );
    out.push_str(&format!(
        "ok {}, rejected {}, deadline-missed {}, shed {}\n",
        stats.completed, stats.rejects, stats.deadline_misses, stats.sheds
    ));
    if batch_window.max(1) > 1 {
        out.push_str(&format!(
            "batching (window {}): {} multi-request batch(es), {} request(s) batched\n",
            batch_window.max(1),
            stats.batches,
            stats.batched_requests
        ));
    }
    debug_assert_eq!(errors, 0, "batch submission never rejects");
    out.push_str(&format!(
        "result cache: {} hits, {} misses, {} dedup joins; rd cache: {} hits, {} misses\n",
        stats.hits, stats.misses, stats.dedup_joins, stats.rd_hits, stats.rd_misses
    ));
    out.push_str(&format!(
        "latency p50 {} µs, p99 {} µs, max {} µs\n",
        stats.p50_us, stats.p99_us, stats.latency_max_us
    ));
    out.push_str(&format!(
        "rolling (last {} tick(s)): p50 {} µs, p99 {} µs, max {} µs over {} request(s)\n",
        stats.window_ticks.min(8),
        stats.rolling_p50_us,
        stats.rolling_p99_us,
        stats.rolling_max_us,
        stats.rolling_count,
    ));
    out.push_str(&format!(
        "wall {:.3} s, {:.0} queries/s\n",
        wall.as_secs_f64(),
        qps
    ));
    if tracing {
        out.push_str(&server.flight_recorder().render());
        if let Some(path) = trace_dump {
            std::fs::write(path, server.flight_recorder().to_json()).map_err(StateError::Io)?;
            out.push_str(&format!("trace dump written to {}\n", path.display()));
        }
    }
    Ok(out)
}

/// `metaprobe eval`: baseline vs RD-based on the held-out test set.
pub fn run_eval(dir: &Path, k: usize) -> Result<String, StateError> {
    let st = state::load_state(dir)?;
    let library = st.library()?;
    let tb = &st.testbed;
    let queries = tb.split.test.queries();
    let mut base_ok = 0.0;
    let mut rd_ok = 0.0;
    for (qi, q) in queries.iter().enumerate() {
        let golden = tb.golden.topk(qi, k);
        let est = tb.estimates(q);
        base_ok += mp_core::partial_correctness(&baseline_select(&est, k), &golden);
        let rds = derive_all_rds(&est, q, library);
        let (set, _) = best_set(&rds, k, CorrectnessMetric::Partial);
        rd_ok += mp_core::partial_correctness(&set, &golden);
    }
    let n = queries.len() as f64;
    let mut table = TextTable::new(
        format!(
            "held-out evaluation (k={k}, {} queries, partial correctness)",
            queries.len()
        ),
        &["method", "Avg(Cor_p)"],
    );
    table.row(&["baseline".into(), fmt3(base_ok / n)]);
    table.row(&["RD-based".into(), fmt3(rd_ok / n)]);
    Ok(table.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_corpus::ScenarioKind;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("metaprobe-cli-cmd-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Writes a *tiny* state (the default generate config is too big for
    /// unit tests).
    fn init_tiny(dir: &Path) {
        let mut c = StateConfig::default_for(ScenarioKind::Health, 5, 0.05, 5);
        c.scenario.topics.n_topics = 6;
        c.scenario.topics.terms_per_topic = 60;
        c.scenario.topics.background_terms = 60;
        c.core = mp_core::CoreConfig::default().with_threshold(10.0);
        c.workload.window = 12;
        c.n_two = 40;
        c.n_three = 30;
        state::save_config(dir, &c).unwrap();
    }

    #[test]
    fn full_cli_workflow() {
        let dir = tmp_dir("workflow");
        init_tiny(&dir);

        let trained = run_train(&dir).unwrap();
        assert!(trained.contains("library saved"));

        let info = run_info(&dir).unwrap();
        assert!(info.contains("trained (library.json)"));
        assert!(info.contains("med."));

        let suggestions = run_suggest(&dir, 3).unwrap();
        let first_query = suggestions.lines().nth(1).unwrap().trim().to_string();
        assert!(!first_query.is_empty());

        let answer = run_query(&dir, &first_query, 1, 0.8, "greedy").unwrap();
        assert!(answer.contains("selected"), "{answer}");
        assert!(answer.contains("certainty"));

        let eval = run_eval(&dir, 1).unwrap();
        assert!(eval.contains("RD-based"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_reports_cache_hits_on_a_repeated_stream() {
        let dir = tmp_dir("serve");
        init_tiny(&dir);
        run_train(&dir).unwrap();

        let out = run_serve(
            &dir, 2, 1, 64, 16, 1, None, 4, 3, 1, 0.8, "greedy", false, None,
        )
        .unwrap();
        assert!(out.contains("served 12 queries (4 unique × 3)"), "{out}");
        assert!(out.contains("1 shard(s)"), "{out}");
        assert!(out.contains("queries/s"), "{out}");
        // 4 unique queries played 3 times: at most 4 misses, the rest
        // hits or dedup joins.
        assert!(out.contains("result cache:"), "{out}");

        // Same stream over a partitioned fleet: the scatter-gather
        // backend serves the identical workload shape.
        let sharded = run_serve(
            &dir, 2, 3, 64, 16, 1, None, 4, 3, 1, 0.8, "greedy", false, None,
        )
        .unwrap();
        assert!(
            sharded.contains("served 12 queries (4 unique × 3)"),
            "{sharded}"
        );
        assert!(sharded.contains("3 shard(s)"), "{sharded}");

        // Batched draining over the same stream: identical workload
        // shape, plus the batching stats line (batches may be zero if
        // the workers outpace the driver — the line always prints).
        let batched = run_serve(
            &dir, 2, 1, 64, 16, 4, None, 4, 3, 1, 0.8, "greedy", false, None,
        )
        .unwrap();
        assert!(
            batched.contains("served 12 queries (4 unique × 3)"),
            "{batched}"
        );
        assert!(batched.contains("batching (window 4):"), "{batched}");

        let bad = run_serve(
            &dir,
            2,
            1,
            64,
            16,
            1,
            None,
            4,
            1,
            1,
            0.8,
            "no-such-policy",
            false,
            None,
        )
        .unwrap();
        assert!(bad.contains("unknown policy"), "{bad}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_trace_dump_writes_schema_valid_json() {
        let dir = tmp_dir("trace-dump");
        init_tiny(&dir);
        run_train(&dir).unwrap();

        let dump = dir.join("trace.json");
        let out = run_serve(
            &dir,
            1,
            1,
            64,
            16,
            1,
            None,
            3,
            2,
            1,
            0.8,
            "greedy",
            true,
            Some(&dump),
        )
        .unwrap();
        assert!(out.contains("flight recorder"), "{out}");
        assert!(out.contains("trace dump written to"), "{out}");

        let json = std::fs::read_to_string(&dump).unwrap();
        assert!(
            json.starts_with("{\"schema\":\"mp-obs-trace/1\""),
            "unexpected dump prefix: {}",
            &json[..json.len().min(80)]
        );
        // The CLI always builds with the obs feature on, so the
        // recorder must have captured the slowest requests of the batch.
        assert!(json.contains("\"trace\""), "{json}");
        assert!(json.contains("\"reason\""), "{json}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_before_train_is_a_clear_error() {
        let dir = tmp_dir("untrained");
        init_tiny(&dir);
        match run_query(&dir, "anything", 1, 0.8, "greedy") {
            Err(StateError::NotTrained(_)) => {}
            other => panic!("expected NotTrained, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_terms_and_policies_are_handled() {
        let dir = tmp_dir("unknowns");
        init_tiny(&dir);
        run_train(&dir).unwrap();
        let out = run_query(&dir, "zzzz qqqq", 1, 0.8, "greedy").unwrap();
        assert!(out.contains("no known terms"));
        let out = run_query(&dir, "zzzz", 1, 0.8, "nonsense-policy").unwrap();
        assert!(out.contains("no known terms") || out.contains("unknown policy"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policies_resolve_by_name() {
        for name in ["greedy", "random", "by-estimate", "max-uncertainty"] {
            assert!(policy_by_name(name, 0).is_some(), "{name}");
        }
        assert!(policy_by_name("optimal-but-wrong", 0).is_none());
    }
}
