//! `metaprobe` — the command-line front end (see crate docs).

use mp_cli::commands;
use mp_corpus::ScenarioKind;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: metaprobe <command> [options]

commands:
  generate --state DIR [--kind health|newsgroup] [--seed N] [--scale F] [--databases N]
  train    --state DIR
  info     --state DIR
  suggest  --state DIR [--n N]
  query    --state DIR --text \"words…\" [--k N] [--threshold T]
           [--policy greedy|random|by-estimate|max-uncertainty]
  eval     --state DIR [--k N]
  serve    --state DIR [--workers N] [--shards S] [--cache-cap C] [--queue-cap Q]
           [--batch-window W] [--shed-p99-ms MS]
           [--n UNIQUE] [--repeat R] [--k N] [--threshold T]
           [--policy greedy|random|by-estimate|max-uncertainty]
           [--trace] [--trace-dump PATH]

observability (any command):
  --obs             print an mp-obs span/metric tree to stderr on exit
  --obs-json PATH   write the mp-obs JSON snapshot to PATH on exit
  (env MP_OBS=0 disables recording entirely)

batching & SLO (serve only):
  --batch-window W  drain up to W queued requests per worker into one
                    term-sharing batch (default 1 = per-request)
  --shed-p99-ms MS  shed deadlined requests when the rolling p99
                    exceeds MS ms and exceeds their remaining slack
                    (default off; needs obs recording)

tracing (serve only):
  --trace           collect per-request waterfalls; print the flight
                    recorder (slowest / deadline-missed / shed) on exit
  --trace-dump PATH also write the flight recorder as JSON (schema
                    mp-obs-trace/1) to PATH
";

struct Opts {
    state: Option<PathBuf>,
    kind: ScenarioKind,
    seed: u64,
    scale: f64,
    databases: usize,
    n: usize,
    text: Option<String>,
    k: usize,
    threshold: f64,
    policy: String,
    workers: usize,
    shards: usize,
    cache_cap: usize,
    queue_cap: usize,
    batch_window: usize,
    shed_p99_ms: Option<u64>,
    repeat: usize,
    obs: bool,
    obs_json: Option<PathBuf>,
    trace: bool,
    trace_dump: Option<PathBuf>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            state: None,
            kind: ScenarioKind::Health,
            seed: 42,
            scale: 0.3,
            databases: 20,
            n: 10,
            text: None,
            k: 1,
            threshold: 0.9,
            policy: "greedy".to_string(),
            workers: 4,
            shards: 1,
            cache_cap: 1024,
            queue_cap: 64,
            batch_window: 1,
            shed_p99_ms: None,
            repeat: 4,
            obs: false,
            obs_json: None,
            trace: false,
            trace_dump: None,
        }
    }
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<(String, Opts), String> {
    let command = args.next().ok_or_else(|| USAGE.to_string())?;
    let mut opts = Opts::default();
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--state" => opts.state = Some(PathBuf::from(value()?)),
            "--kind" => {
                opts.kind = match value()?.as_str() {
                    "health" => ScenarioKind::Health,
                    "newsgroup" => ScenarioKind::Newsgroup,
                    other => return Err(format!("unknown kind {other:?}")),
                }
            }
            "--seed" => opts.seed = value()?.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--scale" => opts.scale = value()?.parse().map_err(|e| format!("bad scale: {e}"))?,
            "--databases" => {
                opts.databases = value()?.parse().map_err(|e| format!("bad count: {e}"))?
            }
            "--n" => opts.n = value()?.parse().map_err(|e| format!("bad n: {e}"))?,
            "--text" => opts.text = Some(value()?),
            "--k" => opts.k = value()?.parse().map_err(|e| format!("bad k: {e}"))?,
            "--threshold" => {
                opts.threshold = value()?
                    .parse()
                    .map_err(|e| format!("bad threshold: {e}"))?
            }
            "--policy" => opts.policy = value()?,
            "--workers" => {
                opts.workers = value()?.parse().map_err(|e| format!("bad workers: {e}"))?
            }
            "--shards" => opts.shards = value()?.parse().map_err(|e| format!("bad shards: {e}"))?,
            "--cache-cap" => {
                opts.cache_cap = value()?
                    .parse()
                    .map_err(|e| format!("bad cache cap: {e}"))?
            }
            "--queue-cap" => {
                opts.queue_cap = value()?
                    .parse()
                    .map_err(|e| format!("bad queue cap: {e}"))?
            }
            "--batch-window" => {
                opts.batch_window = value()?
                    .parse()
                    .map_err(|e| format!("bad batch window: {e}"))?
            }
            "--shed-p99-ms" => {
                opts.shed_p99_ms = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("bad shed p99 limit: {e}"))?,
                )
            }
            "--repeat" => opts.repeat = value()?.parse().map_err(|e| format!("bad repeat: {e}"))?,
            "--obs" => opts.obs = true,
            "--obs-json" => opts.obs_json = Some(PathBuf::from(value()?)),
            "--trace" => opts.trace = true,
            "--trace-dump" => opts.trace_dump = Some(PathBuf::from(value()?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok((command, opts))
}

fn main() -> ExitCode {
    let (command, opts) = match parse(std::env::args().skip(1)) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let Some(state) = opts.state.clone() else {
        eprintln!("--state DIR is required\n{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "generate" => {
            commands::run_generate(&state, opts.kind, opts.seed, opts.scale, opts.databases)
        }
        "train" => commands::run_train(&state),
        "info" => commands::run_info(&state),
        "suggest" => commands::run_suggest(&state, opts.n),
        "query" => match &opts.text {
            Some(text) => commands::run_query(&state, text, opts.k, opts.threshold, &opts.policy),
            None => {
                eprintln!("query needs --text\n{USAGE}");
                return ExitCode::from(2);
            }
        },
        "eval" => commands::run_eval(&state, opts.k),
        "serve" => commands::run_serve(
            &state,
            opts.workers,
            opts.shards,
            opts.cache_cap,
            opts.queue_cap,
            opts.batch_window,
            opts.shed_p99_ms,
            opts.n,
            opts.repeat,
            opts.k,
            opts.threshold,
            &opts.policy,
            opts.trace,
            opts.trace_dump.as_deref(),
        ),
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let code = match result {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    };
    if opts.obs || opts.obs_json.is_some() {
        let snap = mp_obs::snapshot();
        if opts.obs {
            eprint!("{}", snap.render_tree());
        }
        if let Some(path) = &opts.obs_json {
            if let Err(e) = std::fs::write(path, snap.to_json()) {
                eprintln!(
                    "error: cannot write obs snapshot to {}: {e}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    code
}
