//! # mp-cli — the `metaprobe` command-line tool
//!
//! A stateful workflow over the library:
//!
//! ```text
//! metaprobe generate --state demo            # synthesize a testbed
//! metaprobe train    --state demo            # learn the ED library
//! metaprobe info     --state demo            # inspect databases & model
//! metaprobe query    --state demo --text "bofura dafura" --threshold 0.9
//! metaprobe eval     --state demo --k 3      # baseline vs RD-based
//! ```
//!
//! State lives in a directory: a JSON config (`config.json`) that
//! deterministically regenerates the corpus and workload, plus the
//! trained library (`library.json`). Corpora are regenerated on load
//! rather than stored — generation is seeded and cheaper than
//! serializing inverted indexes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod state;

pub use commands::{run_eval, run_generate, run_info, run_query, run_train};
pub use state::{CliState, StateConfig};
