//! CLI state: a directory holding the testbed recipe and trained model.

use mp_core::{CoreConfig, EdLibrary, RelevancyDef};
use mp_corpus::{ScenarioConfig, ScenarioKind};
use mp_eval::{SummaryMode, Testbed, TestbedConfig};
use mp_workload::QueryGenConfig;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// The persisted recipe (everything needed to regenerate the testbed
/// deterministically).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StateConfig {
    /// Corpus scenario recipe.
    pub scenario: ScenarioConfig,
    /// Probabilistic-model knobs.
    pub core: CoreConfig,
    /// Workload recipe.
    pub workload: QueryGenConfig,
    /// 2-term queries per split side.
    pub n_two: usize,
    /// 3-term queries per split side.
    pub n_three: usize,
}

impl StateConfig {
    /// The default CLI testbed: a laptop-friendly health scenario.
    pub fn default_for(kind: ScenarioKind, seed: u64, scale: f64, n_databases: usize) -> Self {
        let mut scenario = ScenarioConfig::new(kind, seed);
        scenario.scale = scale;
        scenario.n_databases = n_databases;
        Self {
            scenario,
            core: CoreConfig::default().with_threshold(0.5),
            workload: QueryGenConfig {
                seed: seed ^ 0x51_7e_a5,
                ..QueryGenConfig::default()
            },
            n_two: 300,
            n_three: 200,
        }
    }

    /// Converts to the evaluation harness's testbed config.
    pub fn testbed_config(&self) -> TestbedConfig {
        TestbedConfig {
            scenario: self.scenario.clone(),
            n_two: self.n_two,
            n_three: self.n_three,
            core: self.core.clone(),
            relevancy: RelevancyDef::DocFrequency,
            summaries: SummaryMode::Cooperative,
            workload: self.workload.clone(),
        }
    }
}

/// A loaded state directory.
pub struct CliState {
    /// The directory backing this state.
    pub dir: PathBuf,
    /// The recipe.
    pub config: StateConfig,
    /// The rebuilt testbed (corpus, mediator, split, golden; the
    /// library inside is freshly trained — use [`CliState::library`]
    /// for the persisted one).
    pub testbed: Testbed,
    /// The persisted trained library, when `train` has run.
    pub trained: Option<EdLibrary>,
}

/// Errors from state operations.
#[derive(Debug)]
pub enum StateError {
    /// Filesystem problem.
    Io(std::io::Error),
    /// Bad JSON.
    Format(serde_json::Error),
    /// The state directory has no config (run `generate` first).
    NotInitialized(PathBuf),
    /// The state has no trained library (run `train` first).
    NotTrained(PathBuf),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Io(e) => write!(f, "i/o error: {e}"),
            StateError::Format(e) => write!(f, "config format error: {e}"),
            StateError::NotInitialized(p) => {
                write!(
                    f,
                    "{} has no config.json — run `metaprobe generate` first",
                    p.display()
                )
            }
            StateError::NotTrained(p) => {
                write!(
                    f,
                    "{} has no library.json — run `metaprobe train` first",
                    p.display()
                )
            }
        }
    }
}

impl std::error::Error for StateError {}

impl From<std::io::Error> for StateError {
    fn from(e: std::io::Error) -> Self {
        StateError::Io(e)
    }
}

impl From<serde_json::Error> for StateError {
    fn from(e: serde_json::Error) -> Self {
        StateError::Format(e)
    }
}

/// Path of the recipe file inside a state directory.
pub fn config_path(dir: &Path) -> PathBuf {
    dir.join("config.json")
}

/// Path of the trained library inside a state directory.
pub fn library_path(dir: &Path) -> PathBuf {
    dir.join("library.json")
}

/// Writes the recipe into `dir` (creating it).
pub fn save_config(dir: &Path, config: &StateConfig) -> Result<(), StateError> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(config_path(dir), serde_json::to_string_pretty(config)?)?;
    Ok(())
}

/// Loads the recipe and rebuilds the testbed; loads the trained library
/// if present.
pub fn load_state(dir: &Path) -> Result<CliState, StateError> {
    let cfg_path = config_path(dir);
    if !cfg_path.exists() {
        return Err(StateError::NotInitialized(dir.to_path_buf()));
    }
    let config: StateConfig = serde_json::from_str(&std::fs::read_to_string(cfg_path)?)?;
    let testbed = Testbed::build(config.testbed_config());
    let lib_path = library_path(dir);
    let trained = if lib_path.exists() {
        Some(
            mp_core::load_library(&lib_path)
                .map_err(|e| StateError::Io(std::io::Error::other(e.to_string())))?,
        )
    } else {
        None
    };
    Ok(CliState {
        dir: dir.to_path_buf(),
        config,
        testbed,
        trained,
    })
}

impl CliState {
    /// The persisted library, or an error directing the user to train.
    pub fn library(&self) -> Result<&EdLibrary, StateError> {
        self.trained
            .as_ref()
            .ok_or_else(|| StateError::NotTrained(self.dir.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("metaprobe-cli-state-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_config() -> StateConfig {
        let mut c = StateConfig::default_for(ScenarioKind::Health, 3, 0.05, 5);
        c.scenario.topics.n_topics = 6;
        c.scenario.topics.terms_per_topic = 60;
        c.scenario.topics.background_terms = 60;
        c.core = CoreConfig::default().with_threshold(10.0);
        c.workload.window = 12;
        c.n_two = 40;
        c.n_three = 30;
        c
    }

    #[test]
    fn config_roundtrip_and_rebuild() {
        let dir = tmp_dir("roundtrip");
        save_config(&dir, &tiny_config()).unwrap();
        let state = load_state(&dir).unwrap();
        assert_eq!(state.testbed.n_databases(), 5);
        assert!(state.trained.is_none());
        assert!(matches!(state.library(), Err(StateError::NotTrained(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_config_is_reported() {
        let dir = tmp_dir("missing");
        match load_state(&dir) {
            Err(StateError::NotInitialized(_)) => {}
            other => panic!("expected NotInitialized, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn rebuild_is_deterministic() {
        let dir = tmp_dir("determinism");
        save_config(&dir, &tiny_config()).unwrap();
        let a = load_state(&dir).unwrap();
        let b = load_state(&dir).unwrap();
        assert_eq!(
            a.testbed.split.test.queries(),
            b.testbed.split.test.queries()
        );
        let q = &a.testbed.split.test.queries()[0];
        assert_eq!(a.testbed.estimates(q), b.testbed.estimates(q));
        std::fs::remove_dir_all(&dir).ok();
    }
}
