//! The paper's motivating scenario at full width: a metasearcher
//! fronting 20 health-related Hidden-Web databases answers a batch of
//! user queries under a certainty contract, returning fused document
//! lists — and reports how much probing the contract cost.
//!
//! Run with:
//! ```text
//! cargo run --release --example health_metasearch
//! ```

use mp_core::probing::GreedyPolicy;
use mp_core::{
    AproConfig, CoreConfig, CorrectnessMetric, IndependenceEstimator, Metasearcher, RelevancyDef,
};
use mp_corpus::{Scenario, ScenarioConfig, ScenarioKind};
use mp_hidden::{ContentSummary, HiddenWebDatabase, Mediator, SimulatedHiddenDb};
use mp_workload::{QueryGenConfig, TrainTestSplit};
use std::sync::Arc;

fn main() {
    // The testbed: 20 mediated databases with the composition of the
    // paper's CompletePlanet health set (specialists + broad science +
    // news), hidden behind keyword-search interfaces.
    println!("building the 20-database health testbed…");
    let scenario = Scenario::generate(ScenarioConfig {
        scale: 0.5,
        ..ScenarioConfig::new(ScenarioKind::Health, 2026)
    });
    let (model, parts) = scenario.into_parts();
    let mut dbs: Vec<Arc<dyn HiddenWebDatabase>> = Vec::new();
    let mut summaries = Vec::new();
    for (spec, index) in parts {
        println!("  {:16} {:>6} documents", spec.name, index.doc_count());
        summaries.push(ContentSummary::cooperative(&index));
        dbs.push(Arc::new(SimulatedHiddenDb::new(spec.name, index)));
    }
    let mediator = Mediator::new(dbs, summaries);

    // Train the probabilistic relevancy model offline.
    let split = TrainTestSplit::generate(&model, 400, 300, QueryGenConfig::default());
    println!("\ntraining on {} queries…", split.train.len());
    let ms = Metasearcher::train(
        mediator,
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        split.train.queries(),
        CoreConfig::default().with_threshold(0.5),
    );

    // Serve a batch of user queries under a k = 3, t = 0.8 contract.
    let k = 3;
    let t = 0.8;
    let batch = &split.test.queries()[..12];
    println!(
        "\nserving {} queries (top-{k} databases, certainty ≥ {t}):\n",
        batch.len()
    );

    let mut total_probes = 0usize;
    for query in batch {
        let mut policy = GreedyPolicy;
        let result = ms.search(
            query,
            AproConfig {
                k,
                threshold: t,
                metric: CorrectnessMetric::Partial,
                max_probes: None,
            },
            &mut policy,
            5,
        );
        total_probes += result.probes_used;
        let names: Vec<&str> = result
            .outcome
            .selected
            .iter()
            .map(|&i| ms.mediator().db(i).name())
            .collect();
        println!(
            "  \"{}\"\n      → {:?}  (certainty {:.2}, {} probes, {} fused hits)",
            query.display(model.vocab()),
            names,
            result.outcome.expected,
            result.probes_used,
            result.hits.len()
        );
    }

    println!(
        "\ntotal query-time probes: {} ({:.1} per query, out of {} databases each)",
        total_probes,
        total_probes as f64 / batch.len() as f64,
        ms.mediator().len()
    );
    println!(
        "without adaptive probing the metasearcher would either trust the estimator \
         blindly (0 probes) or contact all {} databases per query",
        ms.mediator().len()
    );
}
