//! The Section 4 sampling-size study, interactively: how many sample
//! queries does a database need before its error distribution is
//! statistically trustworthy?
//!
//! Reproduces Figures 7 and 8 at a configurable scale and prints the
//! per-database and averaged χ² goodness values plus the recommended
//! sampling size.
//!
//! Run with:
//! ```text
//! cargo run --release --example sampling_study [-- --full]
//! ```

use mp_eval::experiments::fig7_sampling::{render_fig7, run_sampling_study, SamplingStudyConfig};
use mp_eval::experiments::fig8_goodness::{recommended_size, render_fig8};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        println!("running the full-scale study (paper shape: 20 groups, sizes 100..2000)…\n");
        SamplingStudyConfig::paper(3)
    } else {
        println!("running a reduced study (pass --full for the paper shape)…\n");
        let mut c = SamplingStudyConfig::paper(3);
        c.scenario.scale = 0.2;
        c.pool_size = 1_500;
        c.sizes = vec![50, 100, 250, 500];
        c.repetitions = 6;
        c
    };

    let result = run_sampling_study(&config);
    println!("{}", render_fig7(&result, 8));
    println!("{}", render_fig8(&result));
    println!(
        "recommended sampling size (within 0.05 goodness of the best): {}",
        recommended_size(&result, 0.05)
    );
    println!(
        "\nreading: each cell is the average χ² p-value of a sample ED against the\n\
         ideal ED built from the whole pool (10 bins, 9 dof). Above 0.5 means the\n\
         sample is statistically indistinguishable from the ideal — the paper's\n\
         criterion for 'this sampling size suffices'."
    );
}
