//! Probing-policy shoot-out: how many probes does each policy need to
//! reach the same certainty level?
//!
//! Reproduces the spirit of the paper's Section 5 comparison (and
//! ablation A1): the greedy expected-usefulness policy against random,
//! by-estimate, and max-uncertainty baselines on one workload.
//!
//! Run with:
//! ```text
//! cargo run --release --example probing_policies
//! ```

use mp_core::expected::RdState;
use mp_core::probing::{
    apro, AproConfig, ByEstimatePolicy, GreedyPolicy, ProbePolicy, RandomPolicy, UncertaintyPolicy,
};
use mp_core::CorrectnessMetric;
use mp_corpus::{ScenarioConfig, ScenarioKind};
use mp_eval::{Testbed, TestbedConfig};

type NamedPolicyFactory = (&'static str, Box<dyn Fn(usize) -> Box<dyn ProbePolicy>>);

fn main() {
    // A mid-size testbed (10 databases) so the run finishes in seconds.
    println!("building testbed…");
    let mut cfg = TestbedConfig::paper(11);
    cfg.scenario = ScenarioConfig {
        scale: 0.25,
        n_databases: 10,
        ..ScenarioConfig::new(ScenarioKind::Health, 11)
    };
    cfg.n_two = 250;
    cfg.n_three = 150;
    let tb = Testbed::build(cfg);
    let queries = tb.split.test.queries();
    println!(
        "{} databases, {} test queries; target certainty t = 0.9 (k = 1)\n",
        tb.n_databases(),
        queries.len()
    );

    let policies: Vec<NamedPolicyFactory> = vec![
        ("greedy (paper)", Box::new(|_| Box::new(GreedyPolicy))),
        (
            "random",
            Box::new(|qi| Box::new(RandomPolicy::new(qi as u64))),
        ),
        ("by-estimate", Box::new(|_| Box::new(ByEstimatePolicy))),
        ("max-uncertainty", Box::new(|_| Box::new(UncertaintyPolicy))),
    ];

    println!(
        "{:>16}  {:>10}  {:>12}  {:>10}",
        "policy", "avg probes", "correctness", "satisfied"
    );
    for (name, factory) in &policies {
        let mut probes = 0usize;
        let mut correct = 0.0f64;
        let mut satisfied = 0usize;
        for (qi, q) in queries.iter().enumerate() {
            let mut state = RdState::new(tb.rds(q));
            let mut policy = factory(qi);
            let mut probe_fn = |i: usize| tb.golden.actual(qi, i);
            let f: &mut dyn FnMut(usize) -> f64 = &mut probe_fn;
            let out = apro(
                &mut state,
                AproConfig {
                    k: 1,
                    threshold: 0.9,
                    metric: CorrectnessMetric::Absolute,
                    max_probes: None,
                },
                policy.as_mut(),
                f,
            );
            probes += out.n_probes();
            let golden = tb.golden.topk(qi, 1);
            correct += mp_core::absolute_correctness(&out.selected, &golden);
            satisfied += out.satisfied as usize;
        }
        let n = queries.len() as f64;
        println!(
            "{:>16}  {:>10.2}  {:>12.3}  {:>10.3}",
            name,
            probes as f64 / n,
            correct / n,
            satisfied as f64 / n
        );
    }

    println!(
        "\nthe greedy policy reaches the same certainty with the fewest probes — \
         the paper's Section 5.4 claim"
    );
}
