//! Quickstart: a 60-second tour of `metaprobe`.
//!
//! Builds a small synthetic Hidden-Web testbed, trains the
//! probabilistic relevancy model on a query trace, and answers one
//! query three ways — baseline estimation, RD-based selection, and
//! certainty-controlled adaptive probing — printing what each method
//! decides and why.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use mp_core::probing::GreedyPolicy;
use mp_core::{
    AproConfig, CoreConfig, CorrectnessMetric, IndependenceEstimator, Metasearcher, RelevancyDef,
};
use mp_corpus::{Scenario, ScenarioConfig, ScenarioKind};
use mp_hidden::{ContentSummary, HiddenWebDatabase, Mediator, SimulatedHiddenDb};
use mp_workload::{QueryGenConfig, TrainTestSplit};
use std::sync::Arc;

fn main() {
    // 1. Synthesize a Hidden-Web testbed: 20 health-style databases
    //    behind search interfaces (tight-knit specialists, broad science
    //    sites, shallow news sites).
    println!("generating a 20-database health testbed…");
    let scenario = Scenario::generate(ScenarioConfig {
        scale: 0.3,
        ..ScenarioConfig::new(ScenarioKind::Health, 7)
    });
    let (model, parts) = scenario.into_parts();

    let mut dbs: Vec<Arc<dyn HiddenWebDatabase>> = Vec::new();
    let mut summaries = Vec::new();
    for (spec, index) in parts {
        summaries.push(ContentSummary::cooperative(&index));
        dbs.push(Arc::new(SimulatedHiddenDb::new(spec.name, index)));
    }
    let mediator = Mediator::new(dbs, summaries);

    // 2. Generate a query workload and train the error-distribution
    //    library by sampling every database with the training half.
    let split = TrainTestSplit::generate(&model, 300, 200, QueryGenConfig::default());
    println!(
        "training EDs on {} queries across {} databases…",
        split.train.len(),
        mediator.len()
    );
    let ms = Metasearcher::train(
        mediator,
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        split.train.queries(),
        CoreConfig::default(),
    );

    // 3. Take one test query and answer it three ways.
    let query = split.test.queries()[0].clone();
    println!("\nquery: \"{}\"", query.display(model.vocab()));

    // (a) Classic estimation-based selection (paper Section 2.2).
    let baseline = ms.select_baseline(&query, 1);
    println!(
        "  baseline (term-independence) picks  db {:>2} ({})",
        baseline[0],
        ms.mediator().db(baseline[0]).name()
    );

    // (b) RD-based selection: same summaries, plus learned error
    //     distributions — no probing (paper Section 3.3).
    let (rd_set, certainty) = ms.select_rd(&query, 1, CorrectnessMetric::Absolute);
    println!(
        "  RD-based selection picks            db {:>2} ({}) with certainty {:.2}",
        rd_set[0],
        ms.mediator().db(rd_set[0]).name(),
        certainty
    );

    // (c) Adaptive probing to a user-required certainty of 0.9
    //     (paper Section 5).
    let mut policy = GreedyPolicy;
    let outcome = ms.select_adaptive(
        &query,
        AproConfig {
            k: 1,
            threshold: 0.9,
            metric: CorrectnessMetric::Absolute,
            max_probes: None,
        },
        &mut policy,
    );
    println!(
        "  APro (t=0.90) picks                 db {:>2} ({}) with certainty {:.2} after {} probe(s)",
        outcome.selected[0],
        ms.mediator().db(outcome.selected[0]).name(),
        outcome.expected,
        outcome.n_probes()
    );
    for record in &outcome.probes {
        println!(
            "      probed db {:>2} ({}) → actual relevancy {:.0}, certainty now {:.2}",
            record.db,
            ms.mediator().db(record.db).name(),
            record.actual,
            record.expected_after
        );
    }

    // 4. Ground truth: what was actually the most relevant database?
    let actuals: Vec<f64> = (0..ms.mediator().len())
        .map(|i| RelevancyDef::DocFrequency.probe(ms.mediator().db(i), &query, 0))
        .collect();
    let golden = mp_core::correctness::golden_topk(&actuals, 1);
    println!(
        "\nground truth: db {:>2} ({}) with {:.0} matching documents",
        golden[0],
        ms.mediator().db(golden[0]).name(),
        actuals[golden[0]]
    );
    println!(
        "  baseline {}  RD-based {}  APro {}",
        verdict(&baseline, &golden),
        verdict(&rd_set, &golden),
        verdict(&outcome.selected, &golden)
    );
}

fn verdict(selected: &[usize], golden: &[usize]) -> &'static str {
    if selected == golden {
        "✓"
    } else {
        "✗"
    }
}
