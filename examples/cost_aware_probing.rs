//! Probing when databases cost different amounts to contact
//! (the paper's Section 5.2 extension) — and when the natural
//! gain-per-cost rule helps or hurts.
//!
//! The paper assumes unit probe costs and notes the methods extend to
//! heterogeneous costs. The obvious extension is greedy by *certainty
//! gain per unit cost* ([`CostAwareGreedyPolicy`]). This example runs
//! that policy against the cost-blind greedy under fixed per-query
//! budgets, in two tariff regimes:
//!
//! * **aligned** — the expensive databases are the big, informative
//!   ones (metered premium APIs). Paying is then simply optimal, and
//!   the ratio rule's preference for cheap low-gain probes is *myopic*:
//!   cost-blind greedy matches or beats it.
//! * **anti-aligned** — the expensive databases are slow niche sites
//!   that rarely matter. Routing around them is free, and both policies
//!   coincide (cost-aware never pays, cost-blind never wants to).
//!
//! Takeaway: per-step gain-per-cost is safe but not sufficient;
//! beating cost-blind probing in the aligned regime needs budget-level
//! lookahead (a knapsack view of the probe sequence), which the paper
//! leaves — and we leave — as future work.
//!
//! Run with:
//! ```text
//! cargo run --release --example cost_aware_probing
//! ```

use mp_core::expected::RdState;
use mp_core::probing::{
    apro_with_costs, AproConfig, CostAwareGreedyPolicy, GreedyPolicy, ProbeCosts,
};
use mp_core::CorrectnessMetric;
use mp_corpus::{ScenarioConfig, ScenarioKind};
use mp_eval::{Testbed, TestbedConfig};

fn run_regime(tb: &Testbed, costs: &ProbeCosts, label: &str) {
    let queries = tb.split.test.queries();
    println!("\n{label}");
    println!(
        "{:>8}  {:>12}  {:>12}",
        "budget", "cost-aware", "cost-blind"
    );
    for budget in [1.0f64, 2.0, 4.0, 8.0] {
        let mut correct_aware = 0.0;
        let mut correct_blind = 0.0;
        for (qi, q) in queries.iter().enumerate() {
            let golden = tb.golden.topk(qi, 1);
            let config = AproConfig {
                k: 1,
                threshold: 1.0, // spend the whole budget
                metric: CorrectnessMetric::Absolute,
                max_probes: None,
            };

            let mut state = RdState::new(tb.rds(q));
            let mut policy = CostAwareGreedyPolicy::new(costs.clone());
            let mut probe = |i: usize| tb.golden.actual(qi, i);
            let f: &mut dyn FnMut(usize) -> f64 = &mut probe;
            let (outcome, _) =
                apro_with_costs(&mut state, config, costs, Some(budget), &mut policy, f);
            correct_aware += mp_core::absolute_correctness(&outcome.selected, &golden);

            let mut state = RdState::new(tb.rds(q));
            let mut policy = GreedyPolicy;
            let mut probe = |i: usize| tb.golden.actual(qi, i);
            let f: &mut dyn FnMut(usize) -> f64 = &mut probe;
            let (outcome, _) =
                apro_with_costs(&mut state, config, costs, Some(budget), &mut policy, f);
            correct_blind += mp_core::absolute_correctness(&outcome.selected, &golden);
        }
        let nq = queries.len() as f64;
        println!(
            "{:>8.1}  {:>12.3}  {:>12.3}",
            budget,
            correct_aware / nq,
            correct_blind / nq
        );
    }
}

fn main() {
    println!("building testbed…");
    let mut cfg = TestbedConfig::paper(31);
    cfg.scenario = ScenarioConfig {
        scale: 0.25,
        n_databases: 12,
        ..ScenarioConfig::new(ScenarioKind::Health, 31)
    };
    cfg.n_two = 200;
    cfg.n_three = 120;
    let tb = Testbed::build(cfg);
    let n = tb.n_databases();

    // Regime 1 (aligned): the two largest databases are metered premium
    // APIs; news sites are fast and cheap.
    let mut aligned = vec![1.0; n];
    let mut sizes: Vec<(usize, u32)> = (0..n)
        .map(|i| (i, tb.mediator.db(i).size_hint().unwrap_or(0)))
        .collect();
    sizes.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    for &(i, _) in sizes.iter().take(2) {
        aligned[i] = 6.0;
    }
    for (i, name) in tb.mediator.names().iter().enumerate() {
        if name.starts_with("news.") {
            aligned[i] = 0.5;
        }
    }

    // Regime 2 (anti-aligned): the three smallest niche sites are slow
    // and rate-limited instead.
    let mut anti = vec![1.0; n];
    sizes.sort_by_key(|&(_, s)| s);
    for &(i, _) in sizes.iter().take(3) {
        anti[i] = 6.0;
    }
    for (i, name) in tb.mediator.names().iter().enumerate() {
        if name.starts_with("news.") {
            anti[i] = 0.5;
        }
    }

    run_regime(
        &tb,
        &ProbeCosts::new(aligned),
        "regime 1 — expensive = informative (metered premium APIs):",
    );
    run_regime(
        &tb,
        &ProbeCosts::new(anti),
        "regime 2 — expensive = niche (slow rate-limited sites):",
    );

    println!(
        "\nreading: in regime 2 the ratio rule routes around databases nobody\n\
         needs and the policies coincide. In regime 1 the informative databases\n\
         are the priced ones — paying is optimal, and the myopic gain-per-cost\n\
         rule underspends; budget-level lookahead would be needed to beat the\n\
         cost-blind policy there."
    );
}
