//! Derive macros for the offline `serde` stand-in.
//!
//! No `syn`/`quote` (the build is offline): the item is parsed with a
//! hand-rolled walk over `proc_macro::TokenTree`s and code is generated
//! as a string. Supported shapes — the ones this workspace derives:
//!
//! * structs with named fields;
//! * tuple structs (single-field newtypes serialize transparently,
//!   wider tuples as arrays);
//! * enums whose variants are unit or struct-like (externally tagged,
//!   matching upstream serde's default representation).
//!
//! Generics and tuple enum variants are rejected with a panic at
//! expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// True when `tokens[i]` starts an attribute (`#[...]` or `#![...]`).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '!' {
                        i += 1;
                    }
                }
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 1,
                    _ => panic!("serde_derive: malformed attribute"),
                }
            }
            _ => return i,
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a field-list token slice on top-level commas (angle-bracket
/// depth aware) and returns the declared field names.
fn parse_named_fields(group: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs(group, i);
        if i >= group.len() {
            break;
        }
        i = skip_vis(group, i);
        let name = match group.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        match group.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // Consume the type up to a top-level comma.
        let mut angle: i32 = 0;
        while i < group.len() {
            match &group[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(group: &[TokenTree]) -> usize {
    if group.is_empty() {
        return 0;
    }
    let mut angle: i32 = 0;
    let mut fields = 1;
    for t in group {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => fields += 1,
            _ => {}
        }
    }
    fields
}

fn parse_variants(group: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs(group, i);
        if i >= group.len() {
            break;
        }
        let name = match group.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match group.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive: tuple enum variant `{name}` is not supported")
            }
            _ => Fields::Unit,
        };
        // Optional discriminant is unsupported; expect `,` or end.
        if let Some(TokenTree::Punct(p)) = group.get(i) {
            if p.as_char() == ',' {
                i += 1;
            } else {
                panic!("serde_derive: unexpected token after variant `{name}`");
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::Struct {
                    name,
                    fields: Fields::Named(parse_named_fields(&inner)),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::Struct {
                    name,
                    fields: Fields::Tuple(count_tuple_fields(&inner)),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::Enum {
                    name,
                    variants: parse_variants(&inner),
                }
            }
            other => panic!("serde_derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Derives `serde::Serialize` (the offline stand-in's trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let pushes: String = names
                        .iter()
                        .map(|f| {
                            format!(
                                "obj.push((::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f})));\n"
                            )
                        })
                        .collect();
                    format!(
                        "let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                         = ::std::vec::Vec::new();\n{pushes}::serde::Value::Obj(obj)"
                    )
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                        .collect();
                    format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),\n"
                        ),
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "inner.push((::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f})));\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                 let mut inner: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Obj(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Obj(inner))])\n}}\n"
                            )
                        }
                        Fields::Tuple(_) => unreachable!("rejected during parsing"),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (the offline stand-in's trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let field_inits: String = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\")\
                                 .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,\n"
                            )
                        })
                        .collect();
                    format!(
                        "if v.as_obj().is_none() {{\n\
                         return ::std::result::Result::Err(\
                         ::serde::Error::type_mismatch(\"object\", v));\n}}\n\
                         ::std::result::Result::Ok({name} {{\n{field_inits}}})"
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|idx| format!("::serde::Deserialize::from_value(&arr[{idx}])?"))
                        .collect();
                    format!(
                        "let arr = v.as_arr().ok_or_else(|| \
                         ::serde::Error::type_mismatch(\"array\", v))?;\n\
                         if arr.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                         \"wrong tuple arity for {name}\"));\n}}\n\
                         ::std::result::Result::Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| match &v.fields {
                    Fields::Named(fields) => {
                        let vname = &v.name;
                        let field_inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(inner.get(\"{f}\")\
                                     .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,\n"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok(\
                             {name}::{vname} {{\n{field_inits}}}),\n"
                        ))
                    }
                    _ => None,
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Obj(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n}},\n\
                 other => ::std::result::Result::Err(\
                 ::serde::Error::type_mismatch(\"enum {name}\", other)),\n\
                 }}\n}}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
