//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crate registry, so
//! this workspace vendors the *exact* API surface it consumes:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — not the upstream ChaCha12, so streams differ from the
//! real `rand`, but every consumer in this workspace relies only on
//! determinism-for-a-seed and statistical quality, never on exact
//! upstream streams.

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a "standard" value: `f64`/`f32` uniform in `[0, 1)`,
/// integers uniform over their full range, `bool` fair.
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded draw (Lemire); bias is < 2^-64 per draw.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Treat the closed interval as half-open plus the endpoint at
        // one ulp of probability — indistinguishable statistically.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = ((rng.next_u64() >> 40) as f32) * (1.0 / ((1u32 << 24) - 1) as f32);
        lo + u * (hi - lo)
    }
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// A standard draw: floats uniform in `[0, 1)`, integers over their
    /// full range, fair `bool`.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range_and_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&v));
        }
    }

    #[test]
    fn unsized_rng_receiver_works() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = takes_dynish(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac={frac}");
    }
}
