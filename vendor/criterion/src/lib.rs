//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use —
//! [`black_box`], [`Criterion`] with the by-value builder methods,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — backed by a simple wall-clock harness: warm-up, then
//! `sample_size` samples of an adaptively chosen iteration count, with
//! min / median / mean / max per-iteration times printed per benchmark.
//! No HTML reports, no statistical regression analysis.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant-folding of bench
/// inputs and results.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness configuration and registry.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Total wall-clock budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the untimed warm-up.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies command-line arguments (as passed by `cargo bench`):
    /// the first non-flag argument becomes a substring filter on
    /// benchmark names; flags like `--bench` are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') && self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Runs one benchmark (unless filtered out) and prints its timing
    /// summary.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples_ns: Vec::new(),
        };
        routine(&mut bencher);
        report(name, &bencher.samples_ns);
        self
    }
}

/// Per-benchmark measurement driver handed to the bench closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Per-iteration times (ns) of each sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, first warming up, then collecting
    /// `sample_size` samples of an iteration count sized so the samples
    /// roughly fill `measurement_time`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: run at least once, keep going until the budget is
        // spent, and use the runs to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let budget_ns = self.measurement_time.as_nanos() as f64;
        let per_sample_ns = budget_ns / self.sample_size as f64;
        let iters = (per_sample_ns / est_ns).floor().max(1.0) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, samples_ns: &[f64]) {
    if samples_ns.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let mut sorted = samples_ns.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{name:<44} time: [{} {} {}]  mean: {}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        fmt_ns(mean)
    );
}

/// Summary statistics for external consumers (e.g. benches that record
/// results to JSON files).
pub fn summarize(samples_ns: &[f64]) -> (f64, f64, f64, f64) {
    let mut sorted = samples_ns.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted.first().copied().unwrap_or(0.0);
    let max = sorted.last().copied().unwrap_or(0.0);
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    (min, median, mean, max)
}

/// Declares a benchmark group: a function that configures a
/// [`Criterion`] and runs the target functions against it.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $group;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut hit = false;
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(2u64) + black_box(3u64));
            hit = true;
            assert_eq!(b.samples_ns.len(), 5);
            assert!(b.samples_ns.iter().all(|&ns| ns > 0.0));
        });
        assert!(hit);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nope".into()),
            ..Default::default()
        };
        c.bench_function("smoke/other", |_| panic!("must be filtered out"));
    }

    #[test]
    fn summarize_orders_stats() {
        let (min, median, mean, max) = summarize(&[3.0, 1.0, 2.0]);
        assert_eq!((min, median, max), (1.0, 2.0, 3.0));
        assert!((mean - 2.0).abs() < 1e-12);
    }
}
