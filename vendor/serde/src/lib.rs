//! Offline stand-in for `serde`.
//!
//! The build environment has no crate registry, so this workspace
//! vendors a small serialization framework under the `serde` name. It
//! is **not** the upstream data-model: both traits go through a single
//! JSON-shaped [`Value`] tree, which is all `serde_json` (the only
//! format in this workspace) needs. The derive macros re-exported here
//! cover the shapes the workspace uses: named-field structs, newtype
//! structs, and enums with unit or struct variants (externally tagged,
//! like upstream serde).
//!
//! Maps serialize as **sorted `[key, value]` pair arrays**, not JSON
//! objects — deterministic output without requiring string keys.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A JSON-shaped value tree: the interchange model both traits target.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numerics are `f64`, like JSON itself).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Total order over values, used to sort serialized map entries so
    /// output is deterministic regardless of hash-map iteration order.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Num(_) => 2,
                Value::Str(_) => 3,
                Value::Arr(_) => 4,
                Value::Obj(_) => 5,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Num(a), Value::Num(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Arr(a), Value::Arr(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Obj(a), Value::Obj(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let c = ka.cmp(kb).then_with(|| va.total_cmp(vb));
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// A "missing required field" error.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// A type-mismatch error.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, found {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, validating shape and ranges.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_num().ok_or_else(|| Error::type_mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_num().ok_or_else(|| Error::type_mismatch("integer", v))?;
                if n.fract() != 0.0 || !n.is_finite() {
                    return Err(Error::custom(format!("expected integer, found {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::custom(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::type_mismatch("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::type_mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::type_mismatch("2-element array", v)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::type_mismatch("3-element array", v)),
        }
    }
}

/// Shared map serialization: sorted `[key, value]` pair array.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut pairs: Vec<(Value, Value)> =
        entries.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    Value::Arr(
        pairs
            .into_iter()
            .map(|(k, v)| Value::Arr(vec![k, v]))
            .collect(),
    )
}

fn map_entries<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    v.as_arr()
        .ok_or_else(|| Error::type_mismatch("map pair array", v))?
        .iter()
        .map(<(K, V)>::from_value)
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_entries::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_entries::<K, V>(v)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&3u8.to_value()).unwrap(), Some(3));
    }

    #[test]
    fn integer_validation() {
        assert!(u8::from_value(&Value::Num(300.0)).is_err());
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
        assert!(u32::from_value(&Value::Num(-1.0)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let val = m.to_value();
        // Sorted, deterministic pair order.
        let arr = val.as_arr().unwrap();
        assert_eq!(arr[0].as_arr().unwrap()[0].as_str(), Some("a"));
        let back: HashMap<String, u32> = Deserialize::from_value(&val).unwrap();
        assert_eq!(back, m);
    }
}
