//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses:
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies, a
//! regex-subset string strategy, [`collection::vec`] /
//! [`collection::hash_set`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assert_ne!`] / [`prop_assume!`] macros.
//!
//! Differences from upstream, deliberately accepted for an offline
//! build: no shrinking (a failing case reports its values but not a
//! minimal counterexample), and the RNG stream is seeded from the test
//! name (override with `PROPTEST_SEED=<u64>`), so regression files are
//! not consumed.

#![forbid(unsafe_code)]

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of test-case values.
    ///
    /// Unlike upstream there is no value tree: `generate` draws a value
    /// directly and failures are not shrunk.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// One parsed regex atom with its repetition bounds.
    struct Atom {
        /// Candidate characters; empty means "any char" (`.`).
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                if let Some((lo, hi)) = body.split_once(',') {
                    let lo: usize = lo.trim().parse().expect("bad {m,n} quantifier");
                    let hi: usize = if hi.trim().is_empty() {
                        lo + 8
                    } else {
                        hi.trim().parse().expect("bad {m,n} quantifier")
                    };
                    (lo, hi)
                } else {
                    let n: usize = body.trim().parse().expect("bad {n} quantifier");
                    (n, n)
                }
            }
            _ => (1, 1),
        }
    }

    /// Parses the regex subset supported for string strategies:
    /// literal characters, `.`, simple character classes
    /// (`[a-z0-9_]`, no negation), and `* + ? {n} {m,n}` quantifiers.
    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let candidates = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let Some(c) = chars.next() else {
                            panic!("unterminated character class in `{pattern}`");
                        };
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().unwrap();
                                let hi = chars.next().unwrap();
                                for code in (lo as u32)..=(hi as u32) {
                                    if let Some(ch) = char::from_u32(code) {
                                        set.push(ch);
                                    }
                                }
                            }
                            c => {
                                if let Some(p) = prev.take() {
                                    set.push(p);
                                }
                                prev = Some(c);
                            }
                        }
                    }
                    if let Some(p) = prev {
                        set.push(p);
                    }
                    assert!(!set.is_empty(), "empty character class in `{pattern}`");
                    set
                }
                '.' => Vec::new(),
                '\\' => {
                    let esc = chars.next().expect("trailing backslash in pattern");
                    match esc {
                        'd' => ('0'..='9').collect(),
                        'w' => ('a'..='z')
                            .chain('A'..='Z')
                            .chain('0'..='9')
                            .chain(['_'])
                            .collect(),
                        's' => vec![' ', '\t', '\n'],
                        other => vec![other],
                    }
                }
                other => vec![other],
            };
            let (min, max) = parse_quantifier(&mut chars);
            atoms.push(Atom {
                chars: candidates,
                min,
                max,
            });
        }
        atoms
    }

    fn any_char(rng: &mut StdRng) -> char {
        // Mostly printable ASCII with occasional multibyte characters so
        // UTF-8 handling gets exercised.
        match rng.gen_range(0u32..10) {
            0 => char::from_u32(rng.gen_range(0x00A1u32..0x0250)).unwrap_or('ß'),
            1 => char::from_u32(rng.gen_range(0x0391u32..0x03C9)).unwrap_or('λ'),
            _ => char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap(),
        }
    }

    /// Strategy producing strings matching a (subset) regex pattern.
    pub struct StringStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for StringStrategy {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let reps = rng.gen_range(atom.min..=atom.max);
                for _ in 0..reps {
                    if atom.chars.is_empty() {
                        out.push(any_char(rng));
                    } else {
                        out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
                    }
                }
            }
            out
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            StringStrategy {
                atoms: parse_pattern(self),
            }
            .generate(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Size specifications accepted by the collection strategies.
    pub trait SizeRange {
        /// Draws a target length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s. If the element domain is too small for
    /// the drawn size the set is returned with as many distinct
    /// elements as could be found (upstream rejects instead).
    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = HashSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 64 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; aborts the whole test.
        Fail(String),
        /// `prop_assume!` filtered this case out; a fresh one is drawn.
        Reject(String),
    }

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property: draws cases until `config.cases` pass, a
    /// case fails (panic), or too many are rejected (panic).
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.parse::<u64>().unwrap_or_else(|_| fnv1a(&v)),
            Err(_) => fnv1a(name),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let max_rejects = config.cases.saturating_mul(16).saturating_add(256);
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "property `{name}`: too many rejected cases \
                             ({rejected} rejects for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property `{name}` failed after {passed} passing case(s) \
                         [seed {seed}; rerun with PROPTEST_SEED={seed}]: {msg}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Strategy, StringStrategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`test_runner::run`] over drawn cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                #[allow(clippy::redundant_closure_call)]
                (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Route through "{}" so braces in the stringified condition are
        // not misread as format placeholders.
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case unless the condition holds; the runner
/// draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn string_strategy_matches_class_pattern() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn dot_star_generates_varied_lengths() {
        let mut rng = StdRng::seed_from_u64(6);
        let lens: std::collections::HashSet<usize> = (0..100)
            .map(|_| Strategy::generate(&".*", &mut rng).chars().count())
            .collect();
        assert!(lens.len() > 3);
        assert!(lens.iter().all(|&l| l <= 8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            xs in collection::vec(0.0f64..1.0, 0..10),
            n in 1usize..5,
            s in "[a-d]{2}"
        ) {
            prop_assume!(n > 0);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert_eq!(s.len(), 2);
            prop_assert_ne!(n, 0);
        }

        #[test]
        fn hash_set_sizes(set in collection::hash_set(0usize..10, 1..5)) {
            prop_assert!(!set.is_empty() && set.len() < 5);
            prop_assert!(set.iter().all(|&v| v < 10));
        }
    }
}
