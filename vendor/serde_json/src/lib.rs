//! Offline stand-in for `serde_json` over the vendored `serde` Value
//! tree: [`to_string`] (compact, declaration-order object fields,
//! whole numbers printed without a fractional part), [`to_string_pretty`]
//! (two-space indent), and a strict recursive-descent [`from_str`].

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// JSON serialization / deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Largest integer magnitude `f64` represents exactly; whole numbers in
/// this window are printed without a fractional part so round-trips of
/// integer fields stay textually stable (`"version":1`, not `1.0`).
const EXACT_INT_BOUND: f64 = 9_007_199_254_740_992.0; // 2^53

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // Upstream serde_json refuses non-finite floats at the writer
        // level; persisted models never contain them, so `null` here is
        // a defensive placeholder rather than a supported round-trip.
        out.push_str("null");
        return;
    }
    if n.fract() == 0.0 && n.abs() < EXACT_INT_BOUND {
        out.push_str(&format!("{}", n as i64));
    } else {
        let mut buf = format!("{n}");
        // `{}` on f64 already prints the shortest round-trip form; make
        // sure it still reads back as a number (it always carries a `.`
        // or exponent for the non-integer case handled here).
        if !buf.contains(['.', 'e', 'E']) {
            buf.push_str(".0");
        }
        out.push_str(&buf);
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, depth: usize) {
    const INDENT: &str = "  ";
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push(']');
        }
        Value::Obj(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                write_escaped(out, key);
                out.push_str(": ");
                write_pretty(out, val, depth + 1);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes `value` to compact JSON (object fields in declaration
/// order, no whitespace).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: JSON escapes astral chars
                            // as two \uXXXX units.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("lone surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid surrogate pair"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded char worth of bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses `s` as JSON and deserializes it into `T`. Trailing
/// non-whitespace input is an error.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_integers_have_no_fraction() {
        let v = Value::Obj(vec![
            ("version".into(), Value::Num(1.0)),
            ("x".into(), Value::Num(0.25)),
        ]);
        let mut out = String::new();
        write_compact(&mut out, &v);
        assert_eq!(out, "{\"version\":1,\"x\":0.25}");
    }

    #[test]
    fn round_trip_nested() {
        let json = "{\"a\":[1,2.5,null,true],\"b\":{\"c\":\"hi\\n\"}}";
        let v: Value = from_str(json).unwrap();
        let mut out = String::new();
        write_compact(&mut out, &v);
        assert_eq!(out, json);
    }

    #[test]
    fn pretty_uses_two_space_indent() {
        let v = Value::Obj(vec![("k".into(), Value::Arr(vec![Value::Num(1.0)]))]);
        let mut out = String::new();
        write_pretty(&mut out, &v, 0);
        assert_eq!(out, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn shortest_roundtrip_floats() {
        let mut out = String::new();
        write_num(&mut out, 0.1);
        assert_eq!(out, "0.1");
        let parsed: f64 = out.parse().unwrap();
        assert_eq!(parsed, 0.1);
    }
}
